"""Circuit→formula expansion (Prop 3.3) and Brent/Wegener balancing
(Thm 3.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    CircuitBuilder,
    FormulaTree,
    balance_formula,
    canonical_polynomial,
    circuit_to_formula,
    circuit_to_tree,
    formula_depth_bound,
    tree_to_formula,
)


def shared_circuit():
    b = CircuitBuilder()
    x, y, z = b.var("x"), b.var("y"), b.var("z")
    shared = b.add(x, y)
    out = b.mul(shared, b.mul(shared, z))
    return b.build(out)


def test_expansion_is_a_formula():
    f = circuit_to_formula(shared_circuit())
    assert f.is_formula()


def test_expansion_preserves_depth():
    c = shared_circuit()
    f = circuit_to_formula(c)
    assert f.depth == c.depth


def test_expansion_preserves_polynomial():
    c = shared_circuit()
    f = circuit_to_formula(c)
    assert canonical_polynomial(f) == canonical_polynomial(c)


def test_expansion_duplicates_shared_gates():
    c = shared_circuit()
    f = circuit_to_formula(c)
    assert f.size > c.size  # the shared ⊕ gate is copied


def test_expansion_size_bound():
    # Prop 3.3: formula size ≤ 2^{d+1} for depth-d circuits.
    c = shared_circuit()
    f = circuit_to_formula(c)
    assert f.size <= 2 ** (c.depth + 1)


def test_expansion_budget_guard():
    # A ladder of shared gates explodes exponentially: the guard trips.
    b = CircuitBuilder()
    node = b.add(b.var("a"), b.var("b"))
    for i in range(40):
        node = b.mul(node, node)
    c = b.build(node)
    with pytest.raises(MemoryError):
        circuit_to_formula(c, max_size=10_000)


def test_multi_output_requires_choice():
    b = CircuitBuilder()
    c = b.build([b.var("x"), b.var("y")])
    with pytest.raises(ValueError):
        circuit_to_tree(c)
    assert circuit_to_tree(c, output=c.outputs[0]).label == "x"


# -- balancing ------------------------------------------------------------


def random_formula_tree(rng: random.Random, size: int) -> FormulaTree:
    """A random skewed monotone formula over a small variable pool."""
    if size <= 1:
        return FormulaTree.var(rng.choice("abcdef"))
    left_size = rng.randint(1, size - 1)
    op = rng.choice([3, 4])  # OP_ADD, OP_MUL
    return FormulaTree.combine(
        op,
        random_formula_tree(rng, left_size),
        random_formula_tree(rng, size - left_size),
    )


def chain_formula(n: int) -> FormulaTree:
    """Worst case for depth: a left chain x₁ ⊗ x₂ ⊗ ... ⊗ xₙ."""
    node = FormulaTree.var("v0")
    for i in range(1, n):
        node = FormulaTree.combine(4, node, FormulaTree.var(f"v{i}"))
    return node


def test_balance_chain_reduces_depth():
    tree = chain_formula(64)
    original = tree_to_formula(tree)
    balanced = balance_formula(tree)
    assert original.depth == 63
    assert balanced.depth <= formula_depth_bound(original.size)
    assert balanced.depth <= 20
    assert canonical_polynomial(balanced) == canonical_polynomial(original)


def test_balance_preserves_formula_property():
    balanced = balance_formula(chain_formula(40))
    assert balanced.is_formula()


@pytest.mark.parametrize("seed", range(8))
def test_balance_random_formulas_equivalent_over_absorptive(seed):
    rng = random.Random(seed)
    tree = random_formula_tree(rng, 60)
    original = tree_to_formula(tree)
    balanced = balance_formula(tree)
    # Equivalence over every absorptive semiring (Sorp initiality).
    assert canonical_polynomial(balanced) == canonical_polynomial(original)
    assert balanced.depth <= formula_depth_bound(original.size)


@given(seed=st.integers(0, 10_000), size=st.integers(2, 80))
@settings(max_examples=40, deadline=None)
def test_balance_property(seed, size):
    rng = random.Random(seed)
    tree = random_formula_tree(rng, size)
    original = tree_to_formula(tree)
    balanced = balance_formula(tree)
    assert balanced.is_formula()
    assert canonical_polynomial(balanced) == canonical_polynomial(original)
    assert balanced.depth <= formula_depth_bound(original.size)


def test_balance_small_formula_is_identity_like():
    tree = FormulaTree.combine(3, FormulaTree.var("x"), FormulaTree.var("y"))
    balanced = balance_formula(tree)
    assert canonical_polynomial(balanced) == canonical_polynomial(tree_to_formula(tree))
    assert balanced.depth <= 2


def test_balance_with_constants():
    # 0/1 leaves are simplified away before balancing.
    tree = FormulaTree.combine(
        4,
        FormulaTree.const(True),
        FormulaTree.combine(3, FormulaTree.var("x"), FormulaTree.const(False)),
    )
    balanced = balance_formula(tree)
    poly = canonical_polynomial(balanced)
    from repro.semirings import Polynomial

    assert poly == Polynomial.variable("x")


def test_formula_depth_bound_is_logarithmic():
    assert formula_depth_bound(2) <= 8
    assert formula_depth_bound(1024) <= 2 * 18 + 4
    assert formula_depth_bound(1 << 20) < 80
