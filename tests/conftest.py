"""Shared fixtures: the paper's running examples."""

from __future__ import annotations

import pytest

from repro.datalog import Database, Fact, scoped_symbols, transitive_closure


@pytest.fixture(scope="session", autouse=True)
def _private_symbol_scope():
    """Intern into a session-private symbol table by default.

    The process-wide ``GLOBAL_SYMBOLS`` is append-only for the life of
    the process (src/repro/datalog/store.py), so the suite -- which
    churns through thousands of throwaway constants -- scopes its
    interning instead of growing the table every run.  Tests that pin
    the global table's behaviour reference ``GLOBAL_SYMBOLS``
    explicitly and are unaffected.
    """
    with scoped_symbols():
        yield


@pytest.fixture
def figure1_db() -> Database:
    """The exact EDB relation of Figure 1 (7 edges)."""
    edges = [
        ("s", "u1"),
        ("s", "u2"),
        ("u1", "v1"),
        ("u1", "v2"),
        ("u2", "v2"),
        ("v1", "t"),
        ("v2", "t"),
    ]
    return Database.from_edges(edges)


@pytest.fixture
def figure1_fact() -> Fact:
    return Fact("T", ("s", "t"))


@pytest.fixture
def tc_program():
    return transitive_closure()
