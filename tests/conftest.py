"""Shared fixtures: the paper's running examples."""

from __future__ import annotations

import pytest

from repro.datalog import Database, Fact, transitive_closure


@pytest.fixture
def figure1_db() -> Database:
    """The exact EDB relation of Figure 1 (7 edges)."""
    edges = [
        ("s", "u1"),
        ("s", "u2"),
        ("u1", "v1"),
        ("u1", "v2"),
        ("u2", "v2"),
        ("v1", "t"),
        ("v2", "t"),
    ]
    return Database.from_edges(edges)


@pytest.fixture
def figure1_fact() -> Fact:
    return Fact("T", ("s", "t"))


@pytest.fixture
def tc_program():
    return transitive_closure()
