"""The automatic construction dispatcher (the paper's decision tree)."""

from repro.circuits import canonical_polynomial
from repro.constructions import provenance_circuit
from repro.datalog import (
    Database,
    Fact,
    bounded_example,
    dyck1,
    provenance_by_proof_trees,
    same_generation,
    transitive_closure,
)
from repro.workloads import random_digraph


def test_bounded_program_routes_to_theorem_43():
    db = Database.from_edges([(0, 1), (1, 2), (2, 3)])
    db.add("A", 0)
    choice = provenance_circuit(bounded_example(), db, Fact("T", (0, 2)))
    assert choice.construction == "bounded"
    assert "4.3" in choice.theorem
    assert canonical_polynomial(choice.circuit) == provenance_by_proof_trees(
        bounded_example(), db, Fact("T", (0, 2))
    )


def test_tc_routes_to_magic_specialization():
    db = random_digraph(6, 12, seed=1)
    fact = Fact("T", (0, 5))
    choice = provenance_circuit(transitive_closure(), db, fact)
    assert choice.construction == "magic-generic"
    assert "5.8" in choice.theorem
    assert canonical_polynomial(choice.circuit) == provenance_by_proof_trees(
        transitive_closure(), db, fact
    )


def test_depth_optimized_routes_to_uvg():
    edges = [(0, "L", 1), (1, "R", 2)]
    db = Database.from_labeled_edges(edges)
    fact = Fact("S", (0, 2))
    choice = provenance_circuit(dyck1(), db, fact, optimize_depth=True)
    assert choice.construction == "ullman-van-gelder"
    assert canonical_polynomial(choice.circuit) == provenance_by_proof_trees(
        dyck1(), db, fact
    )


def test_general_program_falls_back_to_generic():
    edges = [(0, "L", 1), (1, "R", 2)]
    db = Database.from_labeled_edges(edges)
    choice = provenance_circuit(dyck1(), db, Fact("S", (0, 2)))
    assert choice.construction == "generic"
    assert "3.1" in choice.theorem


def test_same_generation_depth_optimized():
    db = Database()
    db.add("Flat", "a", "b")
    db.add("Up", "x", "a")
    db.add("Down", "b", "y")
    fact = Fact("SG", ("x", "y"))
    choice = provenance_circuit(same_generation(), db, fact, optimize_depth=True)
    assert choice.construction == "ullman-van-gelder"
    assert canonical_polynomial(choice.circuit) == provenance_by_proof_trees(
        same_generation(), db, fact
    )


def test_fact_retargets_program():
    # asking for a non-target IDB fact retargets transparently
    db = random_digraph(5, 8, seed=0)
    program = transitive_closure().with_target("T")
    choice = provenance_circuit(program, db, Fact("T", (0, 4)))
    assert choice.circuit.outputs


def test_choice_repr_mentions_theorem():
    db = Database.from_edges([(0, 1)])
    choice = provenance_circuit(transitive_closure(), db, Fact("T", (0, 1)))
    assert "Theorem" in repr(choice)


def test_construction_choice_serving_api():
    """The choice exposes the compiled runtime: batch, bitset and
    incremental evaluation all share one CompiledCircuit."""
    from repro.circuits import reference_evaluate_all, reference_evaluate_boolean
    from repro.semirings import TROPICAL

    db = random_digraph(6, 12, seed=1)
    fact = Fact("T", (0, 5))
    choice = provenance_circuit(transitive_closure(), db, fact)
    circuit = choice.circuit
    assert choice.compiled() is choice.compiled()  # cached

    weights = {f: 1.0 for f in db.facts()}
    out = circuit.outputs[0]
    expected = reference_evaluate_all(circuit, TROPICAL, weights)[out]
    assert choice.evaluate(TROPICAL, weights) == expected
    assert choice.evaluate_batch(TROPICAL, [weights, weights]) == [expected, expected]

    batches = [[f for i, f in enumerate(sorted(db.facts(), key=repr)) if i % 2 == parity]
               for parity in (0, 1)]
    assert choice.evaluate_boolean_batch(batches) == [
        reference_evaluate_boolean(circuit, trues) for trues in batches
    ]

    served = choice.serve(TROPICAL, weights)
    assert served.value() == expected
    some_fact = sorted(db.facts(), key=repr)[0]
    updated = dict(weights)
    updated[some_fact] = 7.0
    assert served.update({some_fact: 7.0}) == [
        reference_evaluate_all(circuit, TROPICAL, updated)[out]
    ]
