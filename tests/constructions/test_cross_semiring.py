"""Cross-semiring validation: every construction's circuit value equals
naive Datalog evaluation over each absorptive semiring.

This operationalizes the paper's "over any absorptive semiring S"
claims: the circuits compute the provenance polynomial, so evaluating
them under any EDB valuation must reproduce the least fixpoint.
"""

import pytest

from repro.circuits import evaluate
from repro.constructions import (
    bellman_ford_circuit,
    fringe_circuit,
    generic_circuit,
    squaring_circuit,
)
from repro.datalog import Fact, naive_evaluation, transitive_closure
from repro.semirings import BOOLEAN, FUZZY, LUKASIEWICZ, TROPICAL, VITERBI
from repro.workloads import random_digraph

TC = transitive_closure()

SEMIRING_WEIGHT_POOLS = [
    (TROPICAL, [1.0, 2.0, 3.0, 5.0]),
    (VITERBI, [0.2, 0.5, 0.9, 1.0]),
    (FUZZY, [0.1, 0.4, 0.7, 1.0]),
    (BOOLEAN, [True, True, True, False]),
    (LUKASIEWICZ, [0.6, 0.8, 0.9, 1.0]),
]


def builders():
    yield "generic", lambda db, s, t: generic_circuit(TC, db, Fact("T", (s, t)))
    yield "bellman-ford", bellman_ford_circuit
    yield "squaring", squaring_circuit
    yield "fringe", lambda db, s, t: fringe_circuit(TC, db, Fact("T", (s, t)))


@pytest.mark.parametrize("semiring,pool", SEMIRING_WEIGHT_POOLS, ids=lambda p: getattr(p, "name", ""))
@pytest.mark.parametrize("builder_name,builder", list(builders()), ids=[n for n, _ in builders()])
def test_circuit_value_equals_fixpoint(semiring, pool, builder_name, builder):
    import random

    rng = random.Random(hash(builder_name) % 1000)
    db = random_digraph(6, 11, seed=13)
    weights = {fact: rng.choice(pool) for fact in db.facts()}
    fact = Fact("T", (0, 5))
    expected = naive_evaluation(TC, db, semiring, weights=weights).value(fact)
    circuit = builder(db, 0, 5)
    got = evaluate(circuit, semiring, weights)
    assert semiring.eq(got, expected), (builder_name, semiring.name, got, expected)


def test_lattice_semiring_cross_check():
    from repro.semirings import SubsetLatticeSemiring

    lattice = SubsetLatticeSemiring("abcd")
    db = random_digraph(5, 9, seed=2)
    import random

    rng = random.Random(0)
    elements = [frozenset("a"), frozenset("ab"), frozenset("cd"), lattice.one]
    weights = {fact: rng.choice(elements) for fact in db.facts()}
    fact = Fact("T", (0, 4))
    expected = naive_evaluation(TC, db, lattice, weights=weights).value(fact)
    circuit = generic_circuit(TC, db, fact)
    assert evaluate(circuit, lattice, weights) == expected
