"""Theorem 5.8: linear-size circuits for finite RPQs."""

import math

import pytest

from repro.circuits import canonical_polynomial, evaluate
from repro.constructions import finite_rpq_circuit
from repro.datalog import Database, Fact, provenance_by_proof_trees
from repro.grammars import parse_regex, rpq_program
from repro.semirings import TROPICAL
from repro.workloads import random_labeled_digraph


def reference_polynomial(pattern, edges, source, sink):
    """Provenance via the chain-program proof trees (trusted path)."""
    program, _eps = rpq_program(pattern)
    db = Database.from_labeled_edges(edges)
    return provenance_by_proof_trees(program, db, Fact("S", (source, sink)))


@pytest.mark.parametrize(
    "pattern,edges,source,sink",
    [
        ("ab|abc", [(0, "a", 1), (1, "b", 2), (2, "c", 3), (1, "b", 3)], 0, 3),
        ("ab", [(0, "a", 1), (1, "b", 2), (0, "a", 2)], 0, 2),
        ("a(b|c)", [(0, "a", 1), (1, "b", 2), (1, "c", 2)], 0, 2),
        ("abc?", [(0, "a", 1), (1, "b", 2), (2, "c", 3)], 0, 2),
    ],
)
def test_matches_chain_program_provenance(pattern, edges, source, sink):
    dfa = parse_regex(pattern).to_dfa()
    circuit = finite_rpq_circuit(edges, dfa, source, sink)
    assert canonical_polynomial(circuit) == reference_polynomial(
        pattern, edges, source, sink
    )


def test_random_graphs_cross_check():
    pattern = "ab|ba"
    dfa = parse_regex(pattern).to_dfa()
    program, _ = rpq_program(pattern)
    for seed in range(4):
        edges = random_labeled_digraph(5, 10, "ab", seed=seed, backbone_word="ab")
        db = Database.from_labeled_edges(edges)
        circuit = finite_rpq_circuit(edges, dfa, 0, 2)
        reference = provenance_by_proof_trees(program, db, Fact("S", (0, 2)))
        assert canonical_polynomial(circuit) == reference, seed


def test_rejects_infinite_language():
    dfa = parse_regex("a*").to_dfa()
    with pytest.raises(ValueError):
        finite_rpq_circuit([(0, "a", 1)], dfa, 0, 1)


def test_linear_size_in_input():
    # Theorem 5.8: size O(m) for a fixed finite RPQ.
    dfa = parse_regex("abc").to_dfa()
    sizes = []
    for m in (20, 40, 80):
        edges = random_labeled_digraph(m // 2, m, "abc", seed=m, backbone_word="abc")
        circuit = finite_rpq_circuit(edges, dfa, 0, 3)
        sizes.append(circuit.size)
    # doubling m must not quadruple the size (linear growth)
    assert sizes[2] <= 4 * sizes[1] + 16
    assert sizes[1] <= 4 * sizes[0] + 16


def test_logarithmic_depth():
    dfa = parse_regex("abc").to_dfa()
    depths = []
    for m in (16, 64, 256):
        edges = random_labeled_digraph(m // 2, m, "abc", seed=m, backbone_word="abc")
        circuit = finite_rpq_circuit(edges, dfa, 0, 3)
        depths.append(circuit.depth)
    assert depths[-1] <= depths[0] + 2 * math.log2(256 / 16) + 4


def test_tropical_value():
    dfa = parse_regex("ab|c").to_dfa()
    edges = [(0, "a", 1), (1, "b", 2), (0, "c", 2)]
    weights = {
        Fact("a", (0, 1)): 1.0,
        Fact("b", (1, 2)): 1.0,
        Fact("c", (0, 2)): 5.0,
    }
    circuit = finite_rpq_circuit(edges, dfa, 0, 2)
    assert evaluate(circuit, TROPICAL, weights) == 2.0


def test_epsilon_word_excluded():
    dfa = parse_regex("a?").to_dfa()  # {ε, a}
    edges = [(0, "a", 0)]
    circuit = finite_rpq_circuit(edges, dfa, 0, 0)
    # only the self-loop 'a' word counts, not ε
    poly = canonical_polynomial(circuit)
    assert len(poly) == 1
    assert not poly.is_one()
