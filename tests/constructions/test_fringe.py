"""Theorem 6.2: the Ullman–Van Gelder polynomial-fringe circuit."""

import math

import pytest

from repro.circuits import canonical_polynomial, evaluate
from repro.constructions import default_stage_count, fringe_circuit
from repro.datalog import (
    Database,
    Fact,
    dyck1,
    provenance_by_proof_trees,
    reachability,
    relevant_grounding,
    same_generation,
    transitive_closure,
)
from repro.semirings import TROPICAL
from repro.workloads import dyck_nested_path, random_digraph, random_weights

TC = transitive_closure()


def test_tc_on_figure1(figure1_db, figure1_fact):
    circuit = fringe_circuit(TC, figure1_db, figure1_fact)
    assert canonical_polynomial(circuit) == provenance_by_proof_trees(
        TC, figure1_db, figure1_fact
    )


@pytest.mark.parametrize("seed", range(3))
def test_tc_random_graphs(seed):
    db = random_digraph(5, 9, seed=seed)
    fact = Fact("T", (0, 4))
    circuit = fringe_circuit(TC, db, fact)
    assert canonical_polynomial(circuit) == provenance_by_proof_trees(TC, db, fact)


def test_tc_with_cycles():
    db = Database.from_edges([(0, 1), (1, 0), (1, 2)])
    fact = Fact("T", (0, 2))
    circuit = fringe_circuit(TC, db, fact)
    assert canonical_polynomial(circuit) == provenance_by_proof_trees(TC, db, fact)


def test_dyck_nonlinear_program():
    # Example 6.4: Dyck-1 has the polynomial fringe property despite
    # being non-linear.
    edges = dyck_nested_path(3)
    db = Database.from_labeled_edges(edges)
    fact = Fact("S", (0, 6))
    circuit = fringe_circuit(dyck1(), db, fact)
    assert canonical_polynomial(circuit) == provenance_by_proof_trees(dyck1(), db, fact)


def test_monadic_linear_program():
    db = Database.from_edges([(0, 1), (1, 2), (2, 3)])
    db.add("A", 3)
    fact = Fact("U", (0,))
    circuit = fringe_circuit(reachability(), db, fact)
    assert canonical_polynomial(circuit) == provenance_by_proof_trees(
        reachability(), db, fact
    )


def test_same_generation_linear():
    db = Database()
    db.add("Flat", "a", "b")
    db.add("Up", "x", "a")
    db.add("Down", "b", "y")
    db.add("Up", "w", "x")
    db.add("Down", "y", "z")
    fact = Fact("SG", ("w", "z"))
    circuit = fringe_circuit(same_generation(), db, fact)
    assert canonical_polynomial(circuit) == provenance_by_proof_trees(
        same_generation(), db, fact
    )


def test_stage_count_is_logarithmic():
    db = random_digraph(6, 12, seed=0)
    ground = relevant_grounding(TC, db)
    stages = default_stage_count(ground)
    assert stages <= math.ceil(math.log(ground.size, 4 / 3)) + 1


def test_too_few_stages_underapproximate():
    db = Database.from_edges([(i, i + 1) for i in range(8)])
    fact = Fact("T", (0, 8))
    partial = fringe_circuit(TC, db, fact, stages=1)
    full = fringe_circuit(TC, db, fact)
    assert canonical_polynomial(partial) != canonical_polynomial(full)


def test_depth_polylog_on_paths():
    # Depth O(log² m): ratio test across doubling sizes.
    depths = []
    for n in (4, 8, 16):
        db = Database.from_edges([(i, i + 1) for i in range(n)])
        circuit = fringe_circuit(TC, db, Fact("T", (0, n)))
        depths.append((n, circuit.depth))
    (n0, d0), (_n1, _d1), (n2, d2) = depths
    bound = d0 * (math.log(n2) / math.log(n0)) ** 2 * 2 + 16
    assert d2 <= bound, depths


def test_tropical_value_matches_naive_evaluation():
    from repro.datalog import naive_evaluation

    db = random_digraph(6, 10, seed=4)
    weights = random_weights(db, seed=4)
    fact = Fact("T", (0, 5))
    circuit = fringe_circuit(TC, db, fact)
    direct = naive_evaluation(TC, db, TROPICAL, weights=weights).value(fact)
    assert evaluate(circuit, TROPICAL, weights) == direct


def test_all_targets_outputs():
    db = Database.from_edges([(0, 1), (1, 2)])
    circuit = fringe_circuit(TC, db)
    assert len(circuit.outputs) == 3
