"""Theorem 3.1: the generic provenance circuit."""


from repro.circuits import canonical_polynomial, evaluate
from repro.constructions import generic_circuit
from repro.datalog import (
    Database,
    Fact,
    dyck1,
    provenance_by_proof_trees,
    reachability,
    same_generation,
    transitive_closure,
    transitive_closure_nonlinear,
)
from repro.semirings import TROPICAL


def check_against_trees(program, db, fact):
    circuit = generic_circuit(program, db, fact)
    assert canonical_polynomial(circuit) == provenance_by_proof_trees(program, db, fact)
    return circuit


def test_tc_on_figure1(figure1_db, figure1_fact, tc_program):
    check_against_trees(tc_program, figure1_db, figure1_fact)


def test_tc_on_cycle():
    db = Database.from_edges([(0, 1), (1, 2), (2, 0), (0, 3)])
    check_against_trees(transitive_closure(), db, Fact("T", (1, 3)))


def test_nonlinear_tc():
    db = Database.from_edges([(0, 1), (1, 2), (2, 3)])
    circuit = check_against_trees(transitive_closure_nonlinear(), db, Fact("D", (0, 3)))
    assert circuit.num_inputs == 3


def test_dyck_provenance():
    edges = [(0, "L", 1), (1, "L", 2), (2, "R", 3), (3, "R", 4), (4, "L", 5), (5, "R", 6)]
    db = Database.from_labeled_edges(edges)
    check_against_trees(dyck1(), db, Fact("S", (0, 6)))


def test_same_generation():
    db = Database()
    for pair in [("a", "b")]:
        db.add("Flat", *pair)
    db.add("Up", "x", "a")
    db.add("Down", "b", "y")
    check_against_trees(same_generation(), db, Fact("SG", ("x", "y")))


def test_monadic_reachability():
    db = Database.from_edges([(0, 1), (1, 2)])
    db.add("A", 2)
    check_against_trees(reachability(), db, Fact("U", (0,)))


def test_underivable_fact_gives_zero_circuit():
    db = Database.from_edges([(0, 1)])
    circuit = generic_circuit(transitive_closure(), db, Fact("T", (1, 0)))
    assert canonical_polynomial(circuit).is_zero()


def test_all_target_facts_as_outputs():
    db = Database.from_edges([(0, 1), (1, 2)])
    circuit = generic_circuit(transitive_closure(), db)
    assert len(circuit.outputs) == 3  # T(0,1), T(0,2), T(1,2)


def test_insufficient_stages_underapproximate():
    db = Database.from_edges([(i, i + 1) for i in range(5)])
    full = generic_circuit(transitive_closure(), db, Fact("T", (0, 5)))
    partial = generic_circuit(transitive_closure(), db, Fact("T", (0, 5)), stages=2)
    assert not canonical_polynomial(full).is_zero()
    assert canonical_polynomial(partial).is_zero()  # needs 5 stages


def test_early_exit_on_acyclic_input():
    # On a short path the symbolic fixpoint is reached long before N
    # stages, so the circuit stays small despite the default stage count.
    db = Database.from_edges([(0, 1), (1, 2)])
    circuit = generic_circuit(transitive_closure(), db, Fact("T", (0, 2)))
    assert circuit.size < 40


def test_tropical_value_matches_naive_evaluation():
    from repro.datalog import naive_evaluation
    from repro.workloads import random_digraph, random_weights

    db = random_digraph(8, 16, seed=11)
    weights = random_weights(db, seed=11)
    fact = Fact("T", (0, 7))
    circuit = generic_circuit(transitive_closure(), db, fact)
    direct = naive_evaluation(transitive_closure(), db, TROPICAL, weights=weights).value(fact)
    assert evaluate(circuit, TROPICAL, weights) == direct


def test_size_polynomial_in_grounding():
    from repro.datalog import relevant_grounding
    from repro.workloads import random_digraph

    db = random_digraph(8, 16, seed=2)
    ground = relevant_grounding(transitive_closure(), db)
    circuit = generic_circuit(transitive_closure(), db, ground=ground)
    n_facts = len(ground.idb_facts)
    assert circuit.size <= 4 * ground.size * n_facts  # O(N · M)
