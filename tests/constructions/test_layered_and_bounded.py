"""Theorem 3.5 (graph-as-circuit) and Theorem 4.3 (bounded programs)."""

import math

import pytest

from repro.circuits import canonical_polynomial, evaluate
from repro.constructions import bounded_circuit, dag_circuit, layered_circuit
from repro.datalog import (
    Database,
    Fact,
    bounded_example,
    provenance_by_proof_trees,
    transitive_closure,
)
from repro.semirings import TROPICAL
from repro.workloads import layered_graph

TC = transitive_closure()


def test_dag_circuit_matches_proof_trees(figure1_db, figure1_fact):
    circuit = dag_circuit(figure1_db, "s", "t")
    assert canonical_polynomial(circuit) == provenance_by_proof_trees(
        TC, figure1_db, figure1_fact
    )


def test_dag_circuit_linear_size():
    # Theorem 3.5: size O(m).
    for width, depth in [(3, 4), (4, 6), (5, 8)]:
        graph = layered_graph(width, depth, seed=width)
        circuit = dag_circuit(graph.database(), graph.source, graph.sink)
        m = len(graph.edges)
        assert circuit.size <= 3 * m + 2, (width, depth, circuit.size, m)


def test_dag_circuit_rejects_cycles():
    db = Database.from_edges([(0, 1), (1, 0)])
    with pytest.raises(ValueError):
        dag_circuit(db, 0, 1)


def test_dag_circuit_unreachable_sink():
    db = Database.from_edges([(0, 1), (2, 3)])
    circuit = dag_circuit(db, 0, 3)
    assert canonical_polynomial(circuit).is_zero()


def test_layered_circuit_validates_layering():
    with pytest.raises(ValueError):
        layered_circuit([[1], [2]], [("s", 2)], "s", "t")  # skips layer 1


def test_layered_circuit_on_generated_graph():
    graph = layered_graph(3, 3, seed=7)
    circuit = layered_circuit(graph.layers, graph.edges, graph.source, graph.sink)
    reference = provenance_by_proof_trees(
        TC, graph.database(), Fact("T", (graph.source, graph.sink))
    )
    assert canonical_polynomial(circuit) == reference


def test_layered_tropical_value():
    graph = layered_graph(3, 4, seed=1)
    db = graph.database()
    weights = {fact: 1.0 for fact in db.facts()}
    circuit = dag_circuit(db, graph.source, graph.sink)
    # every s–t path crosses all layers: length = num_layers + 1
    assert evaluate(circuit, TROPICAL, weights) == graph.path_length


# -- bounded programs ------------------------------------------------------


def bounded_db(n: int) -> Database:
    db = Database.from_edges([(i, i + 1) for i in range(n)])
    db.add("A", 0)
    db.add("A", 1)
    return db


def test_bounded_example_full_provenance_with_two_stages():
    # Example 4.2 is bounded with k = 2 over any absorptive semiring.
    program = bounded_example()
    db = bounded_db(5)
    fact = Fact("T", (0, 3))
    circuit = bounded_circuit(program, db, bound=2, facts=fact)
    assert canonical_polynomial(circuit) == provenance_by_proof_trees(program, db, fact)


def test_bounded_circuit_depth_logarithmic():
    # Theorem 4.3: depth O(log |I|) across a sweep.
    program = bounded_example()
    depths = []
    for n in (8, 16, 32):
        db = bounded_db(n)
        circuit = bounded_circuit(program, db, bound=2, facts=Fact("T", (0, 3)))
        depths.append(circuit.depth)
    assert depths[-1] <= depths[0] + 2 * math.log2(32 / 8) + 4


def test_bounded_circuit_requires_positive_bound():
    with pytest.raises(ValueError):
        bounded_circuit(bounded_example(), bounded_db(3), bound=0)


def test_one_stage_misses_recursive_contributions():
    program = bounded_example()
    db = bounded_db(5)
    fact = Fact("T", (0, 3))
    one = bounded_circuit(program, db, bound=1, facts=fact)
    two = bounded_circuit(program, db, bound=2, facts=fact)
    assert canonical_polynomial(one) != canonical_polynomial(two)
