"""Theorems 5.6 (Bellman–Ford) and 5.7 (repeated squaring) for TC."""

import math

import pytest

from repro.circuits import canonical_polynomial, evaluate
from repro.constructions import (
    bellman_ford_all_targets,
    bellman_ford_circuit,
    squaring_all_pairs,
    squaring_circuit,
)
from repro.datalog import Database, Fact, provenance_by_proof_trees, transitive_closure
from repro.semirings import TROPICAL, VITERBI
from repro.workloads import random_digraph, random_weights

TC = transitive_closure()


@pytest.mark.parametrize("builder", [bellman_ford_circuit, squaring_circuit], ids=["bf", "sq"])
@pytest.mark.parametrize("seed", range(4))
def test_matches_proof_tree_provenance_random(builder, seed):
    db = random_digraph(6, 12, seed=seed)
    fact = Fact("T", (0, 5))
    circuit = builder(db, 0, 5)
    assert canonical_polynomial(circuit) == provenance_by_proof_trees(TC, db, fact)


@pytest.mark.parametrize("builder", [bellman_ford_circuit, squaring_circuit], ids=["bf", "sq"])
def test_cycles_are_absorbed(builder):
    db = Database.from_edges([(0, 1), (1, 0), (1, 2), (2, 1), (2, 3)])
    fact = Fact("T", (0, 3))
    circuit = builder(db, 0, 3)
    assert canonical_polynomial(circuit) == provenance_by_proof_trees(TC, db, fact)


@pytest.mark.parametrize("builder", [bellman_ford_circuit, squaring_circuit], ids=["bf", "sq"])
def test_source_equals_sink_rejected(builder):
    db = Database.from_edges([(0, 1), (1, 0)])
    with pytest.raises(ValueError):
        builder(db, 0, 0)


def test_bellman_ford_shortest_path_value():
    db = random_digraph(9, 20, seed=3)
    weights = random_weights(db, seed=3)
    circuit = bellman_ford_circuit(db, 0, 8)
    import networkx as nx

    graph = nx.DiGraph()
    for fact, w in weights.items():
        graph.add_edge(*fact.args, weight=w)
    expected = nx.dijkstra_path_length(graph, 0, 8)
    assert math.isclose(evaluate(circuit, TROPICAL, weights), expected)


def test_bellman_ford_size_is_o_mn():
    db = random_digraph(10, 30, seed=1)
    circuit = bellman_ford_circuit(db, 0, 9)
    m, n = 30, 10
    assert circuit.size <= 6 * m * n


def test_bellman_ford_rounds_cutoff():
    db = Database.from_edges([(i, i + 1) for i in range(6)])
    full = bellman_ford_circuit(db, 0, 6)
    short = bellman_ford_circuit(db, 0, 6, rounds=3)
    assert not canonical_polynomial(full).is_zero()
    assert canonical_polynomial(short).is_zero()  # path needs 6 rounds


def test_bellman_ford_all_targets():
    db = Database.from_edges([(0, 1), (1, 2), (0, 3)])
    circuit, node_of = bellman_ford_all_targets(db, 0)
    for target in (1, 2, 3):
        poly = canonical_polynomial(circuit, output=node_of[target])
        assert poly == provenance_by_proof_trees(TC, db, Fact("T", (0, target)))


def test_squaring_depth_is_polylog():
    for n in (6, 10, 14):
        db = random_digraph(n, 3 * n, seed=n)
        circuit = squaring_circuit(db, 0, n - 1)
        bound = 2 * (math.ceil(math.log2(n)) + 1) ** 2 + 8
        assert circuit.depth <= bound, (n, circuit.depth, bound)


def test_squaring_beats_bellman_ford_depth_on_long_paths():
    db = Database.from_edges([(i, i + 1) for i in range(24)])
    bf = bellman_ford_circuit(db, 0, 24)
    sq = squaring_circuit(db, 0, 24)
    assert sq.depth < bf.depth


def test_squaring_all_pairs():
    db = Database.from_edges([(0, 1), (1, 2)])
    circuit, node_of = squaring_all_pairs(db)
    poly_02 = canonical_polynomial(circuit, output=node_of[(0, 2)])
    assert poly_02 == provenance_by_proof_trees(TC, db, Fact("T", (0, 2)))
    poly_20 = canonical_polynomial(circuit, output=node_of[(2, 0)])
    assert poly_20.is_zero()


def test_squaring_viterbi_value():
    db = Database.from_edges([(0, 1), (1, 2), (0, 2)])
    weights = {
        Fact("E", (0, 1)): 0.9,
        Fact("E", (1, 2)): 0.9,
        Fact("E", (0, 2)): 0.5,
    }
    circuit = squaring_circuit(db, 0, 2)
    assert math.isclose(evaluate(circuit, VITERBI, weights), 0.81)


def test_unreachable_pair_is_zero():
    db = Database.from_edges([(0, 1), (2, 3)])
    assert canonical_polynomial(bellman_ford_circuit(db, 0, 3)).is_zero()
    assert canonical_polynomial(squaring_circuit(db, 0, 3)).is_zero()
