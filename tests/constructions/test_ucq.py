"""Proposition 3.7: UCQ circuits and formulas."""

import math

from repro.circuits import canonical_polynomial, evaluate
from repro.constructions import cq_valuations, ucq_circuit
from repro.datalog import Atom, ConjunctiveQuery, Constant, Database, Fact, Variable
from repro.semirings import COUNTING, TROPICAL

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def triangle_cq():
    """Q(X) :- E(X,Y), E(Y,Z), E(Z,X)."""
    return ConjunctiveQuery(
        Atom("Q", (X,)),
        (Atom("E", (X, Y)), Atom("E", (Y, Z)), Atom("E", (Z, X))),
    )


def path2_cq():
    """Q(X, Z) :- E(X,Y), E(Y,Z)."""
    return ConjunctiveQuery(Atom("Q", (X, Z)), (Atom("E", (X, Y)), Atom("E", (Y, Z))))


def test_cq_valuations_enumerate_joins():
    db = Database.from_edges([(0, 1), (1, 2), (1, 3)])
    valuations = cq_valuations(path2_cq(), db, (0, 2))
    assert valuations == [(Fact("E", (0, 1)), Fact("E", (1, 2)))]
    assert cq_valuations(path2_cq(), db, (0, 9)) == []


def test_valuation_arity_check():
    import pytest

    db = Database.from_edges([(0, 1)])
    with pytest.raises(ValueError):
        cq_valuations(path2_cq(), db, (0,))


def test_repeated_head_variable_constraint():
    cq = ConjunctiveQuery(Atom("Q", (X, X)), (Atom("E", (X, X)),))
    db = Database.from_edges([(0, 0), (0, 1)])
    assert cq_valuations(cq, db, (0, 0)) == [(Fact("E", (0, 0)),)]
    assert cq_valuations(cq, db, (0, 1)) == []


def test_constant_in_head():
    cq = ConjunctiveQuery(Atom("Q", (X, Constant(5))), (Atom("E", (X, Constant(5))),))
    db = Database.from_edges([(0, 5), (0, 6)])
    assert cq_valuations(cq, db, (0, 5)) == [(Fact("E", (0, 5)),)]
    assert cq_valuations(cq, db, (0, 6)) == []


def test_ucq_circuit_counts_derivations():
    # diamond: two paths 0→2.
    db = Database.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
    circuit = ucq_circuit(path2_cq(), db, (0, 2))
    assert evaluate(circuit, COUNTING, lambda f: 1) == 2


def test_ucq_circuit_logarithmic_depth():
    # A star with many middle vertices: many monomials, depth stays log.
    edges = [(0, i) for i in range(1, 40)] + [(i, 99) for i in range(1, 40)]
    db = Database.from_edges(edges)
    circuit = ucq_circuit(path2_cq(), db, (0, 99))
    monomials = 39
    assert circuit.depth <= math.ceil(math.log2(monomials)) + 2


def test_ucq_formula_mode():
    db = Database.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
    formula = ucq_circuit(path2_cq(), db, (0, 2), as_formula=True)
    assert formula.is_formula()
    circuit = ucq_circuit(path2_cq(), db, (0, 2))
    assert canonical_polynomial(formula) == canonical_polynomial(circuit)


def test_union_of_cqs_deduplicates_monomials():
    db = Database.from_edges([(0, 1), (1, 2)])
    # The same CQ twice: monomials must not double up (Sorp would hide
    # it, but counting evaluation would reveal the duplicate).
    circuit = ucq_circuit([path2_cq(), path2_cq()], db, (0, 2))
    assert evaluate(circuit, COUNTING, lambda f: 1) == 1


def test_triangle_provenance_tropical():
    db = Database.from_edges([(0, 1), (1, 2), (2, 0), (0, 2)])
    weights = {f: 2.0 for f in db.facts()}
    circuit = ucq_circuit(triangle_cq(), db, (0,))
    assert evaluate(circuit, TROPICAL, weights) == 6.0


def test_no_valuations_gives_zero():
    db = Database.from_edges([(0, 1)])
    circuit = ucq_circuit(triangle_cq(), db, (0,))
    assert canonical_polynomial(circuit).is_zero()
