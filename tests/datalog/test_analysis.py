"""The static program analyzer (DESIGN.md §14).

Pins the full contract of :mod:`repro.datalog.analysis`: the stable
DL001-DL009 diagnostic codes, the Tarjan SCC / stratification report,
dead-rule pruning (exact value preservation for the target cone,
measurable ground-rule reduction), engine-entry validation, and --
property-tested against the real engine x strategy matrix -- the
soundness of divergence prediction: a definite verdict is a claim
about the runtime ``converged`` flag, ``unknown`` is compatible with
either.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExecutionConfig, Session, solve
from repro.datalog import (
    Database,
    Fact,
    FixpointEngine,
    Program,
    ProgramValidationError,
    analyze_program,
    dead_rules,
    dependency_report,
    naive_evaluation,
    parse_program,
    predict_divergence,
    prune_unreachable,
    reachable_predicates,
    relevant_grounding,
    require_valid,
    tarjan_sccs,
    transitive_closure,
    validation_diagnostics,
)
from repro.datalog.analysis import CONVERGES, DIVERGES, UNKNOWN
from repro.semirings import BOOLEAN, COUNTING, COUNTING_CAP, TROPICAL

TC = transitive_closure()
STRATEGIES = ("naive", "seminaive", "columnar")

#: Transitive closure plus a dead pair of rules: ``S`` is never
#: reachable from target ``T``, so pruning must drop exactly its two
#: rules while every ``T`` value stays identical.
DEAD_S = """
T(X, Y) :- E(X, Y).
T(X, Y) :- T(X, Z), E(Z, Y).
S(X, Y) :- E(Y, X).
S(X, Y) :- S(X, Z), E(Y, Z).
"""

#: A basic chain program whose recursive SCC (``S``) has no base case:
#: the CFG from ``T`` is finite ({E}), so under the chain-boundedness
#: guards the analyzer proves convergence without grounding.
UNPRODUCTIVE_CHAIN = """
T(X, Y) :- E(X, Y).
T(X, Y) :- A(X, Z), S(Z, Y).
S(X, Y) :- B(X, Z), S(Z, Y).
"""


def edge_db(*edges):
    db = Database()
    for u, v in edges:
        db.add("E", u, v)
    return db


CYCLE_DB = edge_db(("a", "b"), ("b", "a"))
DAG_DB = edge_db(("a", "b"), ("b", "c"))


# -- diagnostics: DL001 safety, DL002 arity, DL003/DL004/DL009 database ----


def test_dl001_unsafe_rule_reported_per_rule():
    program = parse_program(
        "T(X, Y) :- E(X, X).\nU(A, B) :- E(A, A).\nT(X, Y) :- E(X, Y).",
        validate=False,
    )
    diagnostics = validation_diagnostics(program)
    unsafe = [d for d in diagnostics if d.code == "DL001"]
    assert len(unsafe) == 2
    assert all(d.severity == "error" for d in unsafe)
    assert "Y" in unsafe[0].message and "B" in unsafe[1].message
    assert unsafe[0].rule is program.rules[0]


def test_dl002_arity_clash_names_both_rules():
    program = parse_program(
        "T(X, Y) :- E(X, Y).\nU(X) :- T(X).",
        validate=False,
    )
    diagnostics = validation_diagnostics(program)
    clashes = [d for d in diagnostics if d.code == "DL002"]
    assert len(clashes) == 1
    clash = clashes[0]
    assert clash.severity == "error"
    assert clash.predicate == "T"
    assert "arity 2" in clash.message and "arity 1" in clash.message
    # The diagnostic points at the clashing rule and relates the first use.
    assert clash.rule is program.rules[1]
    assert clash.related == (program.rules[0],)


def test_database_diagnostics_dl003_dl004_dl009():
    program = parse_program("T(X, Y) :- E(X, Y).\nT(X, Y) :- T(X, Z), F(Z, Y).")
    db = Database()
    db.add("E", "a", "b")
    db.add("E", "a", "b", "c")  # arity 3 row against the program's arity-2 use
    db.add("T", "x", "y")  # stored facts for an IDB predicate
    diagnostics = validation_diagnostics(program, db)
    codes = {d.code for d in diagnostics}
    assert codes == {"DL003", "DL004", "DL009"}
    dl003 = next(d for d in diagnostics if d.code == "DL003")
    assert dl003.predicate == "E" and dl003.severity == "warning"
    dl004 = next(d for d in diagnostics if d.code == "DL004")
    assert dl004.predicate == "T" and dl004.severity == "warning"
    dl009 = next(d for d in diagnostics if d.code == "DL009")
    assert dl009.predicate == "F" and dl009.severity == "info"


def test_mixed_arity_database_stays_warning_not_error():
    # Mixed-arity database relations are defined behavior (the store
    # keys rows by (predicate, arity)); the analyzer may warn, never
    # reject.
    program = parse_program("T(X, Y) :- E(X, Y).")
    db = Database()
    db.add("E", "a", "b")
    db.add("E", "a", "b", "c")
    require_valid(program, db)  # must not raise
    report = analyze_program(program, db)
    assert report.ok
    assert report.by_code("DL003")


def test_diagnostic_format_and_json_roundtrip():
    program = parse_program("T(X, Y) :- E(X, X).", validate=False)
    diagnostic = validation_diagnostics(program)[0]
    formatted = diagnostic.format("prog.dl")
    assert formatted.startswith("prog.dl:1:")
    assert "DL001 error:" in formatted
    payload = diagnostic.to_json()
    assert payload["code"] == "DL001"
    assert payload["severity"] == "error"
    assert payload["line"] == 1


def test_program_validation_error_summarizes_codes():
    program = parse_program(
        "T(X, Y) :- E(X, X).\nU(X) :- T(X).",
        validate=False,
    )
    with pytest.raises(ProgramValidationError) as excinfo:
        require_valid(program)
    assert "DL001" in str(excinfo.value) and "DL002" in str(excinfo.value)
    assert len(excinfo.value.diagnostics) == 2


# -- Tarjan SCCs, classification, stratification ---------------------------


def test_tarjan_on_hand_built_graphs():
    # Two 2-cycles bridged by an edge, plus an isolated node.
    graph = {
        "a": {"b"},
        "b": {"a", "c"},
        "c": {"d"},
        "d": {"c"},
        "e": set(),
    }
    sccs = tarjan_sccs(graph)
    assert ("c", "d") in sccs and ("a", "b") in sccs and ("e",) in sccs
    # Reverse topological: the {c,d} component precedes {a,b} (which
    # depends on it).
    assert sccs.index(("c", "d")) < sccs.index(("a", "b"))


def test_tarjan_is_deterministic_and_iterative_on_a_long_path():
    # A 2000-node path would blow the recursion limit in a recursive
    # Tarjan; the iterative one returns 2000 singleton SCCs bottom-up.
    n = 2000
    graph = {f"n{i:05d}": {f"n{i + 1:05d}"} for i in range(n - 1)}
    graph[f"n{n - 1:05d}"] = set()
    sccs = tarjan_sccs(graph)
    assert len(sccs) == n
    assert sccs[0] == (f"n{n - 1:05d}",)
    assert sccs == tarjan_sccs(graph)


def test_dependency_report_linear_tc():
    report = dependency_report(TC)
    assert report.recursion == "linear"
    assert report.is_recursive()
    assert report.scc_of("T") == ("T",)
    assert report.reachable == {"T", "E"}
    assert report.to_json()["recursion"] == "linear"


def test_dependency_report_classifications():
    nonlinear = parse_program("T(X, Y) :- E(X, Y).\nT(X, Y) :- T(X, Z), T(Z, Y).")
    assert dependency_report(nonlinear).recursion == "nonlinear"
    acyclic = parse_program("T(X, Y) :- E(X, Y).\nU(X, Y) :- T(X, Y), F(Y, X).", target="U")
    report = dependency_report(acyclic)
    assert report.recursion == "acyclic"
    assert not report.is_recursive()


def test_strata_order_dependencies_first():
    program = parse_program(
        """
        A(X, Y) :- E(X, Y).
        A(X, Y) :- A(X, Z), E(Z, Y).
        B(X, Y) :- A(X, Y).
        B(X, Y) :- B(X, Z), A(Z, Y).
        """,
        target="B",
    )
    report = dependency_report(program)
    assert report.scc_of("A") != report.scc_of("B")
    level = {p: lvl for lvl, group in enumerate(report.strata) for p in group}
    assert level["A"] < level["B"]
    # SCC list is bottom-up: A's component comes first.
    assert report.sccs.index(("A",)) < report.sccs.index(("B",))


# -- dead rules and pruning ------------------------------------------------


def test_dead_rules_and_reachability_on_dead_s():
    program = parse_program(DEAD_S, target="T")
    assert reachable_predicates(program) == {"T", "E"}
    dead = dead_rules(program)
    assert len(dead) == 2
    assert {rule.head.predicate for rule in dead} == {"S"}
    report = analyze_program(program)
    assert {d.predicate for d in report.by_code("DL008")} == {"S"}
    assert len(report.by_code("DL007")) == 2
    assert report.pruned_rule_count == 2


def test_prune_unreachable_keeps_exactly_the_reachable_headed_subset():
    program = parse_program(DEAD_S, target="T")
    pruned = prune_unreachable(program)
    assert pruned is not program
    assert pruned.target == "T"
    assert pruned.rules == tuple(
        rule for rule in program.rules if rule.head.predicate == "T"
    )


def test_prune_unreachable_is_identity_when_nothing_is_dead():
    assert prune_unreachable(TC) is TC


def test_pruning_shrinks_the_grounding():
    program = parse_program(DEAD_S, target="T")
    db = edge_db(("a", "b"), ("b", "c"), ("c", "d"))
    full = relevant_grounding(program, db)
    pruned = relevant_grounding(prune_unreachable(program), db)
    assert len(pruned.rules) < len(full.rules)
    # The pruned grounding is exactly the reachable-headed subset.
    kept = {key for key in full.rule_keys() if key[1].predicate == "T"}
    remapped = {key[1:] for key in pruned.rule_keys()}
    assert {key[1:] for key in kept} == remapped


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("semiring", [BOOLEAN, COUNTING, TROPICAL], ids=lambda s: s.name)
def test_pruned_solve_preserves_target_cone_values_exactly(strategy, semiring):
    program = parse_program(DEAD_S, target="T")
    db = edge_db(("a", "b"), ("b", "c"), ("c", "d"), ("a", "c"))
    weights = None
    if semiring is TROPICAL:
        rng = random.Random(7)
        weights = {fact: float(rng.randint(1, 9)) for fact in db.facts()}
    full = solve(program, db, semiring, config=ExecutionConfig(strategy=strategy), weights=weights)
    lean = solve(
        program,
        db,
        semiring,
        config=ExecutionConfig(strategy=strategy, prune=True),
        weights=weights,
    )
    full_t = {fact: value for fact, value in full.values.items() if fact.predicate == "T"}
    lean_t = {fact: value for fact, value in lean.values.items() if fact.predicate == "T"}
    assert full_t == lean_t
    # Only the unreachable predicate disappears from the result set.
    assert all(fact.predicate == "T" for fact in lean.values)
    assert any(fact.predicate == "S" for fact in full.values)


def test_session_prune_config_and_plan_program():
    program = parse_program(DEAD_S, target="T")
    db = edge_db(("a", "b"), ("b", "c"))
    plain = Session(program, db)
    lean = Session(program, db, config=ExecutionConfig(prune=True))
    assert plain.plan_program is program
    assert lean.plan_program.rules == prune_unreachable(program).rules
    probe = Fact("T", ("a", "c"))
    assert plain.solve(COUNTING).value(probe) == lean.solve(COUNTING).value(probe)


# -- divergence prediction: unit verdicts ----------------------------------


def test_absorptive_semiring_always_converges():
    prediction = predict_divergence(TC, BOOLEAN)
    assert prediction.verdict == CONVERGES
    assert prediction.definite
    assert "absorptive" in prediction.reason


def test_acyclic_program_converges_over_any_semiring():
    program = parse_program("T(X, Y) :- E(X, Y).\nU(X, Y) :- T(Y, X).", target="U")
    prediction = predict_divergence(program, COUNTING)
    assert prediction.verdict == CONVERGES
    assert "acyclic" in prediction.reason


def test_cyclic_program_without_database_is_unknown():
    prediction = predict_divergence(TC, COUNTING)
    assert prediction.verdict == UNKNOWN
    assert "non-stable" in prediction.reason


def test_ground_cycle_over_counting_diverges_with_witness():
    prediction = predict_divergence(TC, COUNTING, CYCLE_DB)
    assert prediction.verdict == DIVERGES
    assert prediction.witness is not None
    assert prediction.witness.predicate == "T"
    assert "witness" in prediction.to_json()
    result = naive_evaluation(TC, CYCLE_DB, COUNTING)
    assert not result.converged


def test_acyclic_data_over_counting_converges():
    prediction = predict_divergence(TC, COUNTING, DAG_DB)
    assert prediction.verdict == CONVERGES
    assert "acyclic on this database" in prediction.reason
    assert naive_evaluation(TC, DAG_DB, COUNTING).converged


def test_stable_plus_chain_is_honestly_unknown_on_cycles():
    # counting-cap1024's ⊕-chain stabilizes (at the cap, step 1024 --
    # past any naive star probe), so a ground cycle is not a
    # divergence proof.
    prediction = predict_divergence(TC, COUNTING_CAP, CYCLE_DB)
    assert prediction.verdict == UNKNOWN
    assert prediction.witness is not None
    # The saturating fixpoint really does converge, given rounds to
    # reach the cap; unknown must be compatible with that.
    assert naive_evaluation(TC, CYCLE_DB, COUNTING_CAP, max_iterations=5000).converged


def test_zero_weighted_edb_fact_downgrades_diverges_to_unknown():
    db = edge_db(("a", "b"), ("b", "a"))
    for fact in db.facts():
        db.set_weight(fact, 0)
        break
    prediction = predict_divergence(TC, COUNTING, db)
    assert prediction.verdict == UNKNOWN
    assert "zero-weighted" in prediction.reason


def test_unit_production_cycle_diverges_despite_finite_cfg():
    # T :- T is a unit cycle: the CFG language is finite but each fact
    # has infinitely many derivation trees, so the chain-boundedness
    # layer must decline and the ground-cycle layer must answer.
    program = parse_program("T(X, Y) :- E(X, Y).\nT(X, Y) :- T(X, Y).")
    db = edge_db(("a", "b"))
    prediction = predict_divergence(program, COUNTING, db)
    assert prediction.verdict == DIVERGES
    assert not naive_evaluation(program, db, COUNTING).converged


def test_unproductive_chain_cycle_converges_without_grounding():
    program = parse_program(UNPRODUCTIVE_CHAIN, target="T")
    assert dependency_report(program).is_recursive()
    db = Database()
    for u, v in (("a", "b"), ("b", "a")):
        db.add("E", u, v)
        db.add("A", u, v)
        db.add("B", u, v)  # B-cycle in the data; S still derives nothing
    prediction = predict_divergence(program, COUNTING, db)
    assert prediction.verdict == CONVERGES
    assert "chain" in prediction.reason
    for strategy in STRATEGIES:
        result = solve(program, db, COUNTING, config=ExecutionConfig(strategy=strategy))
        assert result.converged


def test_stored_idb_seed_disarms_both_definite_layers():
    # A stored S fact disarms the chain-boundedness layer (the seed
    # could revive the unproductive cycle) AND the ground-cycle
    # diverges layer (the grounding counts the seed as given but the
    # fixpoint values it 0, so the cycle may carry nothing).  The only
    # honest answer is unknown -- and here the runtime does converge,
    # because S's sole support is the unvalued seed.
    program = parse_program(UNPRODUCTIVE_CHAIN, target="T")
    db = Database()
    db.add("E", "a", "b")
    db.add("A", "a", "a")
    db.add("B", "a", "a")
    db.add("S", "a", "b")
    prediction = predict_divergence(program, COUNTING, db)
    assert prediction.verdict == UNKNOWN
    assert "stored" in prediction.reason
    assert naive_evaluation(program, db, COUNTING).converged


# -- divergence prediction vs runtime: the property ------------------------


def random_edge_db(seed: int, n: int, m: int) -> Database:
    rng = random.Random(seed)
    db = Database()
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            db.add("E", u, v)
    return db


@given(seed=st.integers(0, 5000), n=st.integers(3, 6), m=st.integers(3, 10))
@settings(max_examples=30, deadline=None)
def test_definite_verdicts_match_runtime_across_strategies(seed, n, m):
    db = random_edge_db(seed, n, m)
    prediction = predict_divergence(TC, COUNTING, db)
    assert prediction.verdict in (CONVERGES, DIVERGES)  # db supplied: decidable here
    for strategy in STRATEGIES:
        result = solve(TC, db, COUNTING, config=ExecutionConfig(strategy=strategy))
        assert result.converged == (prediction.verdict == CONVERGES)


@given(seed=st.integers(0, 5000), n=st.integers(3, 6), m=st.integers(3, 10))
@settings(max_examples=20, deadline=None)
def test_pruning_never_changes_target_values(seed, n, m):
    db = random_edge_db(seed, n, m)
    program = parse_program(DEAD_S, target="T")
    full = solve(program, db, BOOLEAN)
    lean = solve(program, db, BOOLEAN, config=ExecutionConfig(prune=True))
    assert {f: v for f, v in full.values.items() if f.predicate == "T"} == dict(lean.values)


# -- engine-entry enforcement ----------------------------------------------


def test_engine_rejects_unsafe_program_at_entry():
    program = parse_program("T(X, Y) :- E(X, X).", validate=False)
    db = edge_db(("a", "a"))
    with pytest.raises(ProgramValidationError) as excinfo:
        FixpointEngine().evaluate(program, db, BOOLEAN)
    assert any(d.code == "DL001" for d in excinfo.value.diagnostics)
    with pytest.raises(ProgramValidationError):
        naive_evaluation(program, db, BOOLEAN)


def test_engine_validate_false_is_the_escape_hatch():
    # Arity-clashing dead rules: invalid, but harmlessly evaluable --
    # the mismatched atom can never match, so the engine still
    # computes T when explicitly told not to validate.
    program = parse_program(
        "T(X, Y) :- E(X, Y).\nA(X) :- E(X, Y).\nB(X) :- A(X, X).",
        target="T",
        validate=False,
    )
    db = edge_db(("a", "b"))
    with pytest.raises(ProgramValidationError):
        naive_evaluation(program, db, BOOLEAN)
    result = naive_evaluation(program, db, BOOLEAN, validate=False)
    assert result.value(next(iter(result.values))) is True


def test_solve_strict_fails_before_the_fixpoint_on_predicted_divergence():
    with pytest.raises(ProgramValidationError) as excinfo:
        solve(TC, CYCLE_DB, COUNTING, strict=True)
    assert any(d.code == "DL006" for d in excinfo.value.diagnostics)
    # Non-strict still runs (and honestly reports non-convergence).
    assert not solve(TC, CYCLE_DB, COUNTING).converged
    # Strict on convergent data is a no-op gate.
    assert solve(TC, DAG_DB, COUNTING, strict=True).converged


def test_session_strict_raises_on_invalid_program():
    program = parse_program("T(X, Y) :- E(X, X).", validate=False)
    db = edge_db(("a", "a"))
    with pytest.raises(ProgramValidationError):
        Session(program, db, strict=True)
    Session(TC, db, strict=True)  # clean program constructs fine


def test_session_analyze_reports_and_reuses_grounding():
    session = Session(TC, CYCLE_DB)
    session.ground()
    report = session.analyze(COUNTING)
    assert not report.ok
    assert report.divergence is not None and report.divergence.verdict == DIVERGES
    plain = session.analyze()
    assert plain.ok and plain.divergence is None


# -- full-report shape -----------------------------------------------------


def test_analyze_program_orders_errors_first_and_skips_prediction_on_errors():
    program = parse_program(
        "T(X, Y) :- E(X, X).\nS(X, Y) :- E(X, Y).",
        target="T",
        validate=False,
    )
    report = analyze_program(program, semiring=COUNTING)
    severities = [d.severity for d in report.diagnostics]
    assert severities == sorted(severities, key=("error", "warning", "info").index)
    assert not report.ok
    assert report.divergence is None  # skipped: validation already failed
    assert report.by_code("DL005")  # the SCC report is always present


def test_report_json_is_self_contained():
    report = analyze_program(TC, CYCLE_DB, semiring=COUNTING)
    payload = report.to_json()
    assert payload["ok"] is False  # DL006 error: predicted divergence
    assert payload["target"] == "T"
    assert payload["divergence"]["verdict"] == DIVERGES
    assert payload["dependencies"]["recursion"] == "linear"
    codes = {d["code"] for d in payload["diagnostics"]}
    assert "DL006" in codes and "DL005" in codes


def test_shipped_library_and_examples_are_analyzer_clean():
    from repro.lint import self_check_programs

    items = self_check_programs()
    assert len(items) >= 6
    for name, program, text in items:
        if program is None:
            program = parse_program(text)
        report = analyze_program(program)
        assert report.ok and not report.warnings(), name
