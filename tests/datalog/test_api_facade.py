"""The unified ``repro.api`` facade and its deprecation shims.

PR 6's API redesign routes every execution knob through one frozen
:class:`repro.config.ExecutionConfig`.  This suite pins the contract:

* ``repro.api.solve`` agrees with the legacy spellings across the
  full engine × strategy matrix;
* every legacy kwarg still works but emits ``DeprecationWarning``;
* a legacy kwarg that contradicts an explicit config is a
  ``ValueError``, never a silent override;
* :class:`repro.api.Session` caches grounding and circuits, and its
  fingerprints track content, not object identity.
"""

import warnings

import pytest

from repro import api
from repro.config import (
    FIXPOINT_STRATEGIES,
    GROUNDING_ENGINES,
    DEFAULT_CONFIG,
    ExecutionConfig,
    coerce_config,
)
from repro.constructions import generic_circuit, provenance_circuit
from repro.datalog import (
    Database,
    Fact,
    FixpointEngine,
    magic_grounding,
    naive_evaluation,
    relevant_grounding,
    seminaive_evaluation,
    transitive_closure,
)
from repro.grammars import CFG, cfl_reachability
from repro.semirings import BOOLEAN, COUNTING, TROPICAL


@pytest.fixture
def diamond():
    db = Database.from_edges([(0, 1), (1, 3), (0, 2), (2, 3), (3, 4)])
    return transitive_closure(), db


# -- ExecutionConfig -------------------------------------------------------


def test_config_validates_vocabularies():
    ExecutionConfig(engine="columnar", strategy="naive", construction="fringe")
    with pytest.raises(ValueError):
        ExecutionConfig(engine="btree")
    with pytest.raises(ValueError):
        ExecutionConfig(strategy="gauss-seidel")
    with pytest.raises(ValueError):
        ExecutionConfig(construction="magic")


def test_config_is_frozen_and_evolvable():
    config = ExecutionConfig(engine="indexed")
    with pytest.raises(Exception):
        config.engine = "naive"
    evolved = config.evolve(strategy="columnar")
    assert evolved.engine == "indexed"
    assert evolved.strategy == "columnar"
    assert config.strategy is None  # the original is untouched


def test_config_resolution_and_coercion():
    assert DEFAULT_CONFIG.resolved_engine == "indexed"
    assert DEFAULT_CONFIG.resolved_strategy == "seminaive"
    assert DEFAULT_CONFIG.resolved_construction == "auto"
    from_mapping = coerce_config({"engine": "naive", "strategy": "naive"})
    assert from_mapping == ExecutionConfig(engine="naive", strategy="naive")
    assert coerce_config(None) == DEFAULT_CONFIG
    assert coerce_config(from_mapping) is from_mapping


# -- solve() equivalence matrix --------------------------------------------


@pytest.mark.parametrize("engine", GROUNDING_ENGINES)
@pytest.mark.parametrize("strategy", FIXPOINT_STRATEGIES)
def test_solve_matches_legacy_spellings_across_matrix(diamond, engine, strategy):
    program, db = diamond
    config = ExecutionConfig(engine=engine, strategy=strategy)
    for semiring in (BOOLEAN, COUNTING, TROPICAL):
        unified = api.solve(program, db, semiring, config=config)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = naive_evaluation(
                program, db, semiring, strategy=strategy, grounding_engine=engine
            )
        assert unified.values == legacy.values


def test_session_solve_agrees_with_module_solve(diamond):
    program, db = diamond
    session = api.Session(program, db, ExecutionConfig(strategy="columnar"))
    assert session.solve(COUNTING).values == api.solve(
        program, db, COUNTING, config=ExecutionConfig(strategy="columnar")
    ).values
    assert session.value(Fact("T", (0, 4)), COUNTING) == 2  # 0-1-3-4 and 0-2-3-4


# -- deprecation shims ------------------------------------------------------


def test_every_legacy_kwarg_warns(diamond):
    program, db = diamond
    with pytest.warns(DeprecationWarning, match="naive_evaluation.*deprecated"):
        naive_evaluation(program, db, BOOLEAN, strategy="naive")
    with pytest.warns(DeprecationWarning, match="naive_evaluation.*deprecated"):
        naive_evaluation(program, db, BOOLEAN, grounding_engine="naive")
    with pytest.warns(DeprecationWarning, match="seminaive_evaluation.*deprecated"):
        seminaive_evaluation(program, db, BOOLEAN, grounding_engine="indexed")
    with pytest.warns(DeprecationWarning, match="relevant_grounding.*deprecated"):
        relevant_grounding(program, db, engine="indexed")
    with pytest.warns(DeprecationWarning, match="magic_grounding.*deprecated"):
        magic_grounding(program, 0, db, columnar=True)
    with pytest.warns(DeprecationWarning, match="generic_circuit.*deprecated"):
        generic_circuit(program, db, Fact("T", (0, 4)), engine="indexed")
    grammar = CFG(["S"], ["a"], [("S", ("a",)), ("S", ("S", "S"))], "S")
    with pytest.warns(DeprecationWarning, match="cfl_reachability.*deprecated"):
        cfl_reachability(grammar, [(0, "a", 1)], BOOLEAN, strategy="naive")


def test_config_spelling_is_warning_free(diamond):
    program, db = diamond
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        api.solve(program, db, BOOLEAN, config=ExecutionConfig(engine="columnar"))
        naive_evaluation(program, db, BOOLEAN, config=ExecutionConfig(strategy="naive"))
        relevant_grounding(program, db, config=ExecutionConfig(engine="naive"))
        provenance_circuit(program, db, Fact("T", (0, 4)), config=DEFAULT_CONFIG)


def test_conflicting_legacy_and_config_knobs_raise(diamond):
    program, db = diamond
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="conflicts"):
            naive_evaluation(
                program,
                db,
                BOOLEAN,
                strategy="naive",
                config=ExecutionConfig(strategy="seminaive"),
            )
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="conflicts"):
            relevant_grounding(
                program, db, engine="naive", config=ExecutionConfig(engine="columnar")
            )
    # Agreement is not a conflict.
    with pytest.warns(DeprecationWarning):
        relevant_grounding(
            program, db, engine="naive", config=ExecutionConfig(engine="naive")
        )


def test_fixpoint_engine_accepts_config_and_rejects_contradictions():
    engine = FixpointEngine(config=ExecutionConfig(strategy="columnar", engine="columnar"))
    assert engine.strategy == "columnar"
    assert engine.grounding_engine == "columnar"
    legacy = FixpointEngine("naive", grounding_engine="naive")
    assert legacy.config.strategy == "naive"
    assert legacy.config.engine == "naive"
    with pytest.raises(ValueError):
        FixpointEngine("naive", config=ExecutionConfig(strategy="seminaive"))


# -- Session caching and fingerprints --------------------------------------


def test_session_caches_grounding_and_circuits(diamond):
    program, db = diamond
    session = api.Session(program, db)
    assert session.ground() is session.ground()
    fact = Fact("T", (0, 4))
    assert session.circuit(fact) is session.circuit(fact)
    assert session.compiled(fact) is session.compiled(fact)


def test_session_construction_pinning(diamond):
    program, db = diamond
    fact = Fact("T", (0, 4))
    auto = api.Session(program, db).circuit(fact)
    generic = api.Session(program, db, ExecutionConfig(construction="generic")).circuit(fact)
    fringe = api.Session(program, db, ExecutionConfig(construction="fringe")).circuit(fact)
    assert generic.construction == "generic"
    assert fringe.construction == "fringe"
    # All three agree on the Boolean answer, whatever auto picked.
    truth = {Fact("E", edge) for edge in [(0, 1), (1, 3), (3, 4)]}
    answers = {
        choice.compiled().evaluate_boolean_batch([truth])[0]
        for choice in (auto, generic, fringe)
    }
    assert answers == {True}


def test_fingerprints_track_content_not_identity(diamond):
    program, db = diamond
    twin = Database.from_edges([(3, 4), (2, 3), (0, 2), (1, 3), (0, 1)])  # same edges, shuffled
    assert api.database_fingerprint(db) == api.database_fingerprint(twin)
    assert api.program_fingerprint(program) == api.program_fingerprint(transitive_closure())
    twin.set_weight(Fact("E", (0, 1)), 7.0)
    assert api.database_fingerprint(db) != api.database_fingerprint(twin)
    bigger = Database.from_edges([(0, 1), (1, 3), (0, 2), (2, 3), (3, 4), (4, 5)])
    assert api.database_fingerprint(db) != api.database_fingerprint(bigger)


def test_session_fingerprint_includes_construction(diamond):
    program, db = diamond
    auto = api.Session(program, db).fingerprint
    pinned = api.Session(program, db, ExecutionConfig(construction="fringe")).fingerprint
    assert auto[:2] == pinned[:2]
    assert auto[2] == "auto" and pinned[2] == "fringe"
