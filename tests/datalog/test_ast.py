"""AST validation and the paper's program-class predicates."""

import pytest

from repro.datalog import (
    Atom,
    Constant,
    DatalogError,
    Fact,
    Program,
    Rule,
    Variable,
    bounded_example,
    dyck1,
    reachability,
    same_generation,
    transitive_closure,
    transitive_closure_nonlinear,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def test_atom_basics():
    atom = Atom("E", (X, Constant(3)))
    assert atom.arity == 2
    assert atom.variables == (X,)
    assert atom.constants == (Constant(3),)
    assert not atom.is_ground()


def test_atom_substitute_and_ground():
    atom = Atom("E", (X, Y)).substitute({X: Constant(1), Y: Constant(2)})
    assert atom.is_ground()
    assert atom.to_fact() == Fact("E", (1, 2))


def test_to_fact_requires_ground():
    with pytest.raises(DatalogError):
        Atom("E", (X, Y)).to_fact()


def test_fact_atom_roundtrip():
    fact = Fact("R", ("a", 1))
    assert fact.to_atom().to_fact() == fact


def test_rule_safety():
    safe = Rule(Atom("T", (X, Y)), [Atom("E", (X, Y))])
    assert safe.is_safe()
    unsafe = Rule(Atom("T", (X, Z)), [Atom("E", (X, Y))])
    assert not unsafe.is_safe()
    with pytest.raises(DatalogError):
        Program([unsafe])


def test_empty_body_rejected():
    with pytest.raises(DatalogError):
        Rule(Atom("T", (X, Y)), [])


def test_arity_consistency_enforced():
    rules = [
        Rule(Atom("T", (X, Y)), [Atom("E", (X, Y))]),
        Rule(Atom("T", (X,)), [Atom("E", (X, X))]),
    ]
    with pytest.raises(DatalogError):
        Program(rules)


def test_target_must_be_idb():
    rule = Rule(Atom("T", (X, Y)), [Atom("E", (X, Y))])
    with pytest.raises(DatalogError):
        Program([rule], target="E")


def test_idb_edb_partition():
    tc = transitive_closure()
    assert tc.idb_predicates == {"T"}
    assert tc.edb_predicates == {"E"}
    assert tc.arity_of("T") == 2


def test_initialization_vs_recursive():
    tc = transitive_closure()
    assert len(tc.initialization_rules()) == 1
    assert len(tc.recursive_rules()) == 1


def test_linearity():
    assert transitive_closure().is_linear()
    assert reachability().is_linear()
    assert same_generation().is_linear()
    assert not transitive_closure_nonlinear().is_linear()
    assert not dyck1().is_linear()


def test_monadicity():
    assert reachability().is_monadic()
    assert not transitive_closure().is_monadic()


def test_chain_classification():
    assert transitive_closure().is_basic_chain()
    assert transitive_closure_nonlinear().is_basic_chain()
    assert dyck1().is_basic_chain()
    assert not reachability().is_basic_chain()  # unary head


def test_same_generation_is_chain():
    # Up(x,z) ∧ SG(z,w) ∧ Down(w,y) threads x→z→w→y: a chain rule.
    assert same_generation().is_basic_chain()


def test_chain_rule_shape_violations():
    # repeated variable breaks the chain threading
    bad = Rule(Atom("T", (X, Y)), [Atom("E", (X, X)), Atom("E", (X, Y))])
    assert not bad.is_chain()
    # head variables must be distinct
    loop = Rule(Atom("T", (X, X)), [Atom("E", (X, X))])
    assert not loop.is_chain()


def test_left_linearity():
    assert transitive_closure().is_left_linear_chain()
    assert not transitive_closure_nonlinear().is_left_linear_chain()
    assert not dyck1().is_left_linear_chain()
    # right-linear variant
    rules = [
        Rule(Atom("T", (X, Y)), [Atom("E", (X, Y))]),
        Rule(Atom("T", (X, Y)), [Atom("E", (X, Z)), Atom("T", (Z, Y))]),
    ]
    program = Program(rules)
    assert program.is_right_linear_chain()
    assert not program.is_left_linear_chain()


def test_connectedness():
    assert transitive_closure().is_connected()
    assert reachability().is_connected()
    assert not bounded_example().is_connected()  # A(x) ∧ T(z,y) is disconnected


def test_dependency_graph_and_recursion():
    tc = transitive_closure()
    assert tc.dependency_graph() == {"T": frozenset({"T"})}
    assert tc.is_recursive()
    ucq_like = Program([Rule(Atom("Q", (X,)), [Atom("R", (X,))])])
    assert not ucq_like.is_recursive()


def test_mutual_recursion_detected():
    rules = [
        Rule(Atom("A", (X,)), [Atom("B", (X,))]),
        Rule(Atom("B", (X,)), [Atom("A", (X,)), Atom("E", (X, X))]),
        Rule(Atom("A", (X,)), [Atom("S", (X,))]),
    ]
    program = Program(rules, target="A")
    assert program.is_recursive()


def test_rule_rename_standardizes_apart():
    rule = transitive_closure().rules[1]
    renamed = rule.rename("_0")
    assert renamed.variables.isdisjoint(rule.variables)
    assert renamed.head.predicate == rule.head.predicate


def test_with_target():
    program = dyck1().with_target("S")
    assert program.target == "S"
    with pytest.raises(DatalogError):
        dyck1().with_target("Nope")


def test_reprs():
    assert "T(X, Y)" in repr(transitive_closure())
    assert repr(Fact("E", (1, 2))) == "E(1,2)"
