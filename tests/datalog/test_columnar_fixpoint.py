"""The id-space columnar fixpoint engine (DESIGN.md §9).

Three layers are pinned here:

* :class:`~repro.datalog.grounding.ColumnarGroundProgram` -- the
  parallel-array grounding produced by
  :func:`~repro.datalog.grounding.columnar_grounding`: rule arrays,
  CSR ``by_head``/``by_body`` adjacency against the tuple
  ``GroundProgram``'s dict indexes, boundary decoding, lowering from
  tuple space;
* the ``strategy="columnar"`` fixpoint -- observational equivalence
  (values, iterations, convergence, rule-evaluation counts) with the
  tuple strategies, over semirings with and without closure-compiler
  kernels, including divergence behaviour;
* the full **engine × strategy matrix** -- every
  ``(grounding_engine, strategy)`` pair must agree on ``rule_keys()``
  and derived facts / fixpoint values over random digraphs, Dyck-1,
  same-generation and magic workloads (the ISSUE 5 acceptance
  matrix).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    COLUMNAR,
    ColumnarGroundProgram,
    Database,
    Fact,
    FixpointEngine,
    GROUNDING_ENGINES,
    STRATEGIES,
    columnar_grounding,
    derivable_facts,
    dyck1,
    magic_grounding,
    magic_specialize,
    naive_evaluation,
    relevant_grounding,
    same_generation,
    seminaive_evaluation,
    transitive_closure,
)
from repro.semirings import BOOLEAN, COUNTING, TROPICAL
from repro.semirings.numeric import BooleanSemiring
from repro.workloads import random_digraph, random_weights

TC = transitive_closure()
DYCK = dyck1()


class _UncompiledBoolean(BooleanSemiring):
    """Boolean semantics without closure-compiler templates: forces the
    generic bound-method loop, so both kernel paths are exercised."""

    compiled_add_expr = None
    compiled_mul_expr = None


UNCOMPILED_BOOLEAN = _UncompiledBoolean()


def random_edge_db(seed: int, n: int, m: int, seeded_idbs: int = 0) -> Database:
    rng = random.Random(seed)
    db = Database()
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            db.add("E", u, v)
    for _ in range(seeded_idbs):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            db.add("T", u, v)
    return db


def dyck_db(seed: int, pairs: int) -> Database:
    rng = random.Random(seed)
    edges = []
    node = 0
    for _ in range(pairs):
        edges.append((node, "L", node + 1))
        edges.append((node + 1, "R", node + 2))
        node += 2
    for _ in range(pairs):
        u, v = rng.randrange(node + 1), rng.randrange(node + 1)
        if u != v:
            edges.append((u, rng.choice(["L", "R"]), v))
    return Database.from_labeled_edges(edges)


# -- the columnar ground program ------------------------------------------


def test_columnar_grounding_matches_tuple_grounding():
    db = random_edge_db(3, 8, 18)
    ground = relevant_grounding(TC, db, engine="indexed")
    cground = columnar_grounding(TC, db)
    assert cground.rule_keys() == ground.rule_keys()
    assert cground.idb_facts == ground.idb_facts
    assert len(cground) == len(ground.rules)
    assert cground.size == ground.size
    assert cground.max_body_idbs() == ground.max_body_idbs()
    assert cground.to_ground_program().rule_keys() == ground.rule_keys()
    # The grounding pass records its Boolean round count.
    facts, iterations = derivable_facts(TC, db, ground=cground)
    naive_facts, naive_iterations = derivable_facts(TC, db, engine="naive")
    assert facts == naive_facts
    assert iterations == naive_iterations


def test_csr_adjacency_matches_dict_indexes():
    db = random_edge_db(5, 7, 16)
    cground = columnar_grounding(TC, db)
    ground = cground.to_ground_program()
    by_head_ptr, by_head_rules = cground.by_head_csr()
    by_body_ptr, by_body_rules = cground.by_body_csr()

    def decoded(position):
        rule = ground.rules[position]
        return (rule.rule_index, rule.head, rule.idb_body, rule.edb_body)

    for fact, positions in ground.rule_indices_by_head.items():
        fid = cground.find_fact_id(fact)
        got = [by_head_rules[at] for at in range(by_head_ptr[fid], by_head_ptr[fid + 1])]
        assert got == sorted(got)  # ascending, like the tuple index
        assert {decoded(p) for p in got} == {decoded(p) for p in positions}
    for fact, positions in ground.rules_by_idb_body.items():
        fid = cground.find_fact_id(fact)
        got = [by_body_rules[at] for at in range(by_body_ptr[fid], by_body_ptr[fid + 1])]
        assert len(got) == len(set(got))  # per-rule dedup, like the tuple index
        assert {decoded(p) for p in got} == {decoded(p) for p in positions}


def test_from_ground_program_round_trips_and_stays_private():
    from repro.datalog import GLOBAL_SYMBOLS

    db = random_edge_db(9, 6, 12)
    ground = relevant_grounding(TC, db, engine="naive")
    before = len(GLOBAL_SYMBOLS)
    lowered = ColumnarGroundProgram.from_ground_program(ground)
    assert lowered.rule_keys() == ground.rule_keys()
    assert lowered.idb_facts == ground.idb_facts
    assert len(GLOBAL_SYMBOLS) == before  # lowering interns privately
    assert lowered.iterations is None  # no Boolean pass ran


def test_find_fact_id_misses_cleanly():
    db = Database.from_edges([(1, 2), (2, 3)])
    cground = columnar_grounding(TC, db)
    assert cground.find_fact_id(Fact("T", (1, 3))) is not None
    assert cground.find_fact_id(Fact("T", (3, 1))) is None
    assert cground.find_fact_id(Fact("T", ("never-interned", 1))) is None
    assert cground.find_fact_id(Fact("Unknown", (1, 2))) is None


def test_columnar_grounding_handles_rule_constants():
    from repro.datalog import parse_program

    program = parse_program(
        """
        P(X, 777) :- E(X, Y).
        Q(Z) :- P(Z, 777).
        """,
        target="Q",
    )
    db = Database.from_edges([(1, 2), (2, 3)])
    assert columnar_grounding(program, db).rule_keys() == relevant_grounding(
        program, db, engine="naive"
    ).rule_keys()
    # Unknown body constants match nothing, as in every other engine.
    impossible = parse_program("T(X, Y) :- E(X, Y), E(Y, 99).", target="T")
    assert len(columnar_grounding(impossible, db)) == 0


def test_columnar_grounding_nullary_atoms():
    """Propositional (zero-arity) atoms must ground and evaluate like
    every other engine (regression: the row-builder once required at
    least one term)."""
    from repro.datalog import Atom, Program, Rule, Variable

    x = Variable("X")
    program = Program(
        [
            Rule(Atom("P", ()), (Atom("Q", ()),)),
            Rule(Atom("T", (x,)), (Atom("E", (x,)), Atom("P", ()))),
        ],
        target="T",
    )
    db = Database()
    db.add("Q")
    db.add("E", 1)
    db.add("E", 2)
    assert_matrix_agrees(program, db, BOOLEAN)
    assert Fact("T", (1,)) in FixpointEngine(COLUMNAR, "columnar").evaluate(
        program, db, BOOLEAN
    ).values


def test_derivable_facts_rejects_ground_without_round_count():
    import pytest

    db = Database.from_edges([(1, 2), (2, 3)])
    lowered = ColumnarGroundProgram.from_ground_program(relevant_grounding(TC, db))
    with pytest.raises(ValueError, match="round count"):
        derivable_facts(TC, db, ground=lowered)


def test_columnar_grounding_repeated_variables():
    from repro.datalog import parse_program

    program = parse_program(
        "S(X) :- E(X, X).\nT2(X, Y) :- S(X), E(X, Y).", target="T2"
    )
    db = Database.from_edges([(1, 1), (1, 2), (2, 2), (2, 3)])
    assert columnar_grounding(program, db).rule_keys() == relevant_grounding(
        program, db, engine="naive"
    ).rule_keys()


# -- strategy equivalence -------------------------------------------------


def assert_strategies_agree(program, db, semiring, weights=None):
    reference = FixpointEngine("naive").evaluate(program, db, semiring, weights=weights)
    for strategy in STRATEGIES:
        result = FixpointEngine(strategy).evaluate(program, db, semiring, weights=weights)
        assert result.values == reference.values, strategy
        assert result.iterations == reference.iterations, strategy
        assert result.converged == reference.converged, strategy
        assert result.strategy == strategy


@given(seed=st.integers(0, 5000), n=st.integers(3, 7), m=st.integers(3, 14))
@settings(max_examples=40, deadline=None)
def test_columnar_strategy_agrees_boolean_tc(seed, n, m):
    db = random_edge_db(seed, n, m)
    assert_strategies_agree(TC, db, BOOLEAN)


@given(seed=st.integers(0, 5000), n=st.integers(3, 6), m=st.integers(3, 12))
@settings(max_examples=30, deadline=None)
def test_columnar_strategy_agrees_tropical_tc(seed, n, m):
    db = random_edge_db(seed, n, m)
    assert_strategies_agree(TC, db, TROPICAL, random_weights(db, seed=seed))


@given(seed=st.integers(0, 5000), pairs=st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_columnar_strategy_agrees_dyck(seed, pairs):
    assert_strategies_agree(DYCK, dyck_db(seed, pairs), BOOLEAN)


def test_columnar_strategy_generic_kernel_matches_compiled():
    """The exec-generated kernel and the bound-method fallback must be
    indistinguishable (same loop, ⊗/⊕ inlined vs called)."""
    for seed in range(5):
        db = random_edge_db(seed, 6, 14)
        compiled = FixpointEngine(COLUMNAR).evaluate(TC, db, BOOLEAN)
        generic = FixpointEngine(COLUMNAR).evaluate(TC, db, UNCOMPILED_BOOLEAN)
        assert compiled.values == generic.values
        assert compiled.iterations == generic.iterations
        assert compiled.rule_evaluations == generic.rule_evaluations


def test_columnar_strategy_counts_rule_evaluations_like_seminaive():
    db = random_edge_db(11, 7, 18)
    a = FixpointEngine("seminaive").evaluate(TC, db, BOOLEAN)
    b = FixpointEngine(COLUMNAR).evaluate(TC, db, BOOLEAN)
    assert a.rule_evaluations == b.rule_evaluations
    assert b.rule_evaluations > 0


def test_columnar_strategy_divergence_matches():
    import pytest

    from repro.datalog.evaluation import DivergenceError

    db = Database.from_edges([(1, 2), (2, 1)])
    a = FixpointEngine("seminaive").evaluate(TC, db, COUNTING, max_iterations=6)
    b = FixpointEngine(COLUMNAR).evaluate(TC, db, COUNTING, max_iterations=6)
    assert not a.converged and not b.converged
    assert a.iterations == b.iterations == 6
    assert a.values == b.values
    with pytest.raises(DivergenceError):
        FixpointEngine(COLUMNAR).evaluate(
            TC, db, COUNTING, max_iterations=6, raise_on_divergence=True
        )


def test_ground_forms_interchange_across_strategies():
    """Either grounding representation feeds any strategy: columnar
    strategies lower tuple groundings, tuple strategies decode
    columnar ones."""
    db = random_edge_db(2, 7, 16)
    ground = relevant_grounding(TC, db, engine="indexed")
    cground = columnar_grounding(TC, db)
    reference = naive_evaluation(TC, db, BOOLEAN, ground=ground, strategy="naive")
    for ground_form in (ground, cground):
        for strategy in STRATEGIES:
            result = FixpointEngine(strategy).evaluate(
                TC, db, BOOLEAN, ground=ground_form
            )
            assert result.values == reference.values, (strategy, type(ground_form))
    via_seminaive = seminaive_evaluation(TC, db, BOOLEAN, ground=cground)
    assert via_seminaive.values == reference.values


# -- the full engine × strategy matrix ------------------------------------


def assert_matrix_agrees(program, db, semiring, weights=None):
    """Every (grounding engine, fixpoint strategy) pair -- plus the
    direct columnar_grounding path -- must agree on rule keys and
    fixpoint values."""
    reference_ground = relevant_grounding(program, db, engine="naive")
    reference_keys = reference_ground.rule_keys()
    assert columnar_grounding(program, db).rule_keys() == reference_keys
    reference = FixpointEngine("naive", "naive").evaluate(
        program, db, semiring, weights=weights
    )
    for engine in GROUNDING_ENGINES:
        assert (
            relevant_grounding(program, db, engine=engine).rule_keys()
            == reference_keys
        ), engine
        for strategy in STRATEGIES:
            result = FixpointEngine(strategy, engine).evaluate(
                program, db, semiring, weights=weights
            )
            assert result.values == reference.values, (engine, strategy)
            assert result.iterations == reference.iterations, (engine, strategy)
            assert result.converged and reference.converged


@given(
    seed=st.integers(0, 5000),
    n=st.integers(3, 6),
    m=st.integers(3, 12),
    seeded_idbs=st.integers(0, 2),
)
@settings(max_examples=15, deadline=None)
def test_matrix_random_digraph(seed, n, m, seeded_idbs):
    # Grounding equality holds with IDB facts seeded into the input;
    # evaluation runs only without them (a seeded IDB body fact that
    # no rule derives has no defined fixpoint value -- the tuple
    # strategies raise on such groundings, a pre-existing contract).
    db = random_edge_db(seed, n, m, seeded_idbs)
    if not len(db):
        return
    reference_keys = relevant_grounding(TC, db, engine="naive").rule_keys()
    assert columnar_grounding(TC, db).rule_keys() == reference_keys
    for engine in GROUNDING_ENGINES:
        assert relevant_grounding(TC, db, engine=engine).rule_keys() == reference_keys
    if seeded_idbs == 0:
        assert_matrix_agrees(TC, db, BOOLEAN)


@given(seed=st.integers(0, 5000), pairs=st.integers(1, 3))
@settings(max_examples=10, deadline=None)
def test_matrix_dyck(seed, pairs):
    assert_matrix_agrees(DYCK, dyck_db(seed, pairs), BOOLEAN)


def test_matrix_same_generation():
    rng = random.Random(7)
    db = Database()
    for _ in range(12):
        db.add(rng.choice(["Up", "Flat", "Down"]), rng.randrange(6), rng.randrange(6))
    assert_matrix_agrees(same_generation(), db, BOOLEAN)


def test_matrix_tropical_weights():
    db = random_edge_db(13, 6, 14)
    assert_matrix_agrees(TC, db, TROPICAL, random_weights(db, seed=13))


def test_matrix_magic_workload():
    graph = random_digraph(14, 24, seed=7)
    magic = magic_specialize(TC, 0)
    assert_matrix_agrees(magic, graph, BOOLEAN)


def test_magic_grounding_composes_with_columnar():
    graph = random_digraph(14, 24, seed=9)
    tuple_ground = magic_grounding(TC, 0, graph, engine="naive")
    cground = magic_grounding(TC, 0, graph, columnar=True)
    assert isinstance(cground, ColumnarGroundProgram)
    assert cground.rule_keys() == tuple_ground.rule_keys()
    a = FixpointEngine(COLUMNAR).evaluate(
        magic_specialize(TC, 0), graph, BOOLEAN, ground=cground
    )
    b = FixpointEngine("seminaive").evaluate(
        magic_specialize(TC, 0), graph, BOOLEAN, ground=tuple_ground
    )
    assert a.values == b.values


# -- circuits stream from the columnar grounding --------------------------


def circuit_outputs(circuit, semiring, assignment):
    from repro.circuits.evaluate import evaluate_all

    values = evaluate_all(
        circuit, semiring, lambda label: assignment.get(label, semiring.one)
    )
    return [values[node] for node in circuit.outputs]


@given(seed=st.integers(0, 5000), n=st.integers(3, 6), m=st.integers(3, 12))
@settings(max_examples=10, deadline=None)
def test_generic_circuit_columnar_stream_agrees(seed, n, m):
    from repro.constructions import generic_circuit

    db = random_edge_db(seed, n, m)
    weights = random_weights(db, seed=seed)
    assignment = dict(db.valuation(TROPICAL))
    assignment.update(weights)
    tuple_circuit = generic_circuit(TC, db, engine="indexed")
    columnar_circuit = generic_circuit(TC, db, engine="columnar")
    assert circuit_outputs(tuple_circuit, TROPICAL, assignment) == circuit_outputs(
        columnar_circuit, TROPICAL, assignment
    )


@given(seed=st.integers(0, 5000), pairs=st.integers(1, 3))
@settings(max_examples=8, deadline=None)
def test_fringe_circuit_columnar_stream_agrees(seed, pairs):
    from repro.constructions import fringe_circuit

    db = dyck_db(seed, pairs)
    assignment = dict(db.valuation(BOOLEAN))
    tuple_circuit = fringe_circuit(DYCK, db, engine="indexed")
    columnar_circuit = fringe_circuit(DYCK, db, engine="columnar")
    assert circuit_outputs(tuple_circuit, BOOLEAN, assignment) == circuit_outputs(
        columnar_circuit, BOOLEAN, assignment
    )


def test_circuits_accept_explicit_facts_and_precomputed_ground():
    from repro.constructions import fringe_circuit, generic_circuit

    db = random_edge_db(1, 7, 16)
    assignment = dict(db.valuation(BOOLEAN))
    cground = columnar_grounding(TC, db)
    ground = relevant_grounding(TC, db)
    requested = [Fact("T", (0, 1)), Fact("T", (99, 98)), Fact("E", (0, 1))]
    for build in (generic_circuit, fringe_circuit):
        via_tuple = build(TC, db, facts=requested, ground=ground)
        via_columnar = build(TC, db, facts=requested, ground=cground)
        assert circuit_outputs(via_tuple, BOOLEAN, assignment) == circuit_outputs(
            via_columnar, BOOLEAN, assignment
        ), build.__name__
