"""The interned columnar fact store and the ``engine="columnar"`` backend.

Two layers are pinned here (DESIGN.md §8):

* the storage primitives of ``repro.datalog.store`` -- symbol-table
  interning, arity-checked columnar writers, bisect-range pattern
  indexes (hypothesis-checked against a brute-force filter, including
  rows appended *after* an index was built), and delta views;
* the columnar join engine -- observational equivalence with the
  indexed and naive engines (identical ``GroundProgram`` as a set of
  ground rules, identical derivable facts, iteration counts and
  fixpoint values) on random digraphs, Dyck-1, same-generation and
  magic-set workloads, plus the probe regression the benchmarks
  assert.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    ColumnarStore,
    Database,
    DatalogError,
    Fact,
    FixpointEngine,
    SymbolTable,
    count_join_probes,
    derivable_facts,
    dyck1,
    full_grounding,
    magic_grounding,
    magic_specialize,
    relevant_grounding,
    same_generation,
    scoped_symbols,
    transitive_closure,
)
from repro.semirings import BOOLEAN, TROPICAL
from repro.workloads import random_digraph, random_weights

TC = transitive_closure()


def rule_set(ground):
    return ground.rule_keys()


def assert_engines_agree(program, db):
    grounds = {
        engine: relevant_grounding(program, db, engine=engine)
        for engine in ("naive", "indexed", "columnar")
    }
    reference = rule_set(grounds["naive"])
    for engine, ground in grounds.items():
        assert rule_set(ground) == reference, engine
        assert len(ground.rules) == len(set(ground.rules)), engine
        assert ground.idb_facts == grounds["naive"].idb_facts, engine


# -- symbol table ---------------------------------------------------------


def test_symbol_table_interning_is_idempotent_and_dense():
    table = SymbolTable()
    a = table.intern("a")
    b = table.intern("b")
    assert table.intern("a") == a
    assert (a, b) == (0, 1)
    assert len(table) == 2
    assert table.decode(a) == "a"
    assert table.decode_row((b, a)) == ("b", "a")
    assert "a" in table and "c" not in table


def test_symbol_table_get_does_not_insert():
    table = SymbolTable()
    assert table.get("missing") is None
    assert table.get_row(("missing",)) is None
    assert len(table) == 0
    table.intern("x")
    assert table.get("x") == 0
    assert table.get_row(("x", "y")) is None  # any miss -> None
    assert len(table) == 1


def test_symbol_table_mixed_hashable_constants():
    # NB: 0/False and 1/True are equal as dict keys, so they intern to
    # one id -- the same conflation Python's tuple-sets (the Database
    # layout) already apply; ids must distinguish everything else.
    table = SymbolTable()
    ids = table.intern_row((0, "0", (1, 2), None))
    assert len(set(ids)) == 4  # no value collisions across types
    assert table.decode_row(ids) == (0, "0", (1, 2), None)
    assert table.intern(False) == table.intern(0)


# -- columnar relations and pattern indexes -------------------------------


def test_relation_append_dedups_and_checks_arity():
    store = ColumnarStore(SymbolTable())
    assert store.insert_fact(Fact("E", (1, 2)))
    assert not store.insert_fact(Fact("E", (1, 2)))
    assert store.size("E") == 1
    # Direct relation writers are arity-checked...
    with pytest.raises(DatalogError):
        store.relation("E").append((0, 1, 2))
    # ... but the store keys relations by (predicate, arity), so a
    # database holding one predicate at two arities (legal for inputs,
    # illegal in programs) lands in two relations instead of clashing.
    assert store.insert_fact(Fact("E", (1, 2, 3)))
    assert store.size("E", 2) == 1 and store.size("E", 3) == 1
    assert store.size("E") == 2
    assert store.relation("E") is None  # ambiguous without an arity
    assert store.relation("E", 2) is not None
    assert store.contains_fact(Fact("E", (1, 2)))
    assert store.contains_fact(Fact("E", (1, 2, 3)))
    assert set(store.facts("E")) == {Fact("E", (1, 2)), Fact("E", (1, 2, 3))}


def test_mixed_arity_database_grounds_like_the_other_engines():
    # Wrong-arity tuples of a program predicate must simply never
    # match, not crash the columnar materialization (regression: the
    # store once fixed a predicate's arity at first insert).
    db = Database.from_edges([(1, 2), (2, 3)])
    db.add("E", 7, 8, 9)
    db.add("T", 4)
    assert_engines_agree(TC, db)
    naive_facts, _ = derivable_facts(TC, db, engine="naive")
    columnar_facts, _ = derivable_facts(TC, db, engine="columnar")
    assert naive_facts == columnar_facts


def test_store_contains_and_decode_roundtrip():
    store = ColumnarStore(SymbolTable())
    facts = [Fact("E", (1, 2)), Fact("E", (2, 3)), Fact("A", ("x",))]
    for fact in facts:
        store.insert_fact(fact)
    for fact in facts:
        assert store.contains_fact(fact)
    assert not store.contains_fact(Fact("E", (3, 1)))
    assert not store.contains_fact(Fact("E", (1, "never-interned")))
    assert not store.contains_fact(Fact("missing", (1,)))
    assert set(store.facts()) == set(facts)
    assert set(store.facts("E")) == {Fact("E", (1, 2)), Fact("E", (2, 3))}
    assert len(store) == 3


@given(
    seed=st.integers(0, 10_000),
    arity=st.integers(1, 3),
    rows=st.integers(1, 60),
    extra=st.integers(0, 30),
)
@settings(max_examples=60, deadline=None)
def test_pattern_index_matches_bruteforce_filter(seed, arity, rows, extra):
    """Bisect-range lookups must agree with a full scan, for every
    bound-position pattern, before and after post-build appends."""
    rng = random.Random(seed)
    store = ColumnarStore(SymbolTable())
    domain = range(max(2, rows // 4))

    def random_row():
        return tuple(rng.choice(domain) for _ in range(arity))

    for _ in range(rows):
        store.insert_fact(Fact("R", random_row()))
    relation = store.relation("R")

    positions = tuple(
        sorted(rng.sample(range(arity), rng.randint(1, arity)))
    )
    # Build the index now, then append more rows: the pending-tail path
    # must keep lookups exact.
    relation.index_for(positions)
    for _ in range(extra):
        store.insert_fact(Fact("R", random_row()))

    all_rows = list(relation.id_rows())
    probe = rng.choice(all_rows)
    key = probe[positions[0]] if len(positions) == 1 else tuple(probe[p] for p in positions)
    got = sorted(relation.row(i) for i in relation.lookup(positions, key))
    want = sorted(
        row
        for row in all_rows
        if all(row[p] == (key if len(positions) == 1 else key[at]) for at, p in enumerate(positions))
    )
    assert got == want


@given(
    seed=st.integers(0, 100_000),
    arity=st.integers(1, 3),
    nops=st.integers(1, 120),
)
@settings(max_examples=60, deadline=None)
def test_pattern_index_interleaved_ops_match_reference(seed, arity, nops):
    """Interleaved appends, pattern lookups and delta reads against a
    naive reference model.

    The build path (index constructed over a finished relation) is
    exercised everywhere; this drives the *pending-tail* path instead:
    lookups keep landing between appends, so tails are probed and
    merged at every fill level, interleaved with watermark/delta reads
    over the same append log (the ISSUE 5 pattern-index satellite).
    """
    rng = random.Random(seed)
    store = ColumnarStore(SymbolTable())
    reference: list = []  # deduplicated id rows in append order
    resident = set()
    marks: list = []  # (watermark, reference length when taken)
    relation = None

    def random_row():
        return tuple(store.symbols.intern(rng.randrange(6)) for _ in range(arity))

    for _ in range(nops):
        action = rng.random()
        if action < 0.5 or relation is None:
            row = random_row()
            store.insert_ids("R", row)
            if row not in resident:
                resident.add(row)
                reference.append(row)
            relation = store.relation("R", arity)
        elif action < 0.85:
            positions = tuple(sorted(rng.sample(range(arity), rng.randint(1, arity))))
            if reference and rng.random() < 0.7:
                probe = rng.choice(reference)
                key_values = tuple(probe[p] for p in positions)
            else:
                key_values = tuple(rng.randrange(6) for _ in positions)
            key = key_values[0] if len(positions) == 1 else key_values
            got = sorted(relation.row(i) for i in relation.lookup(positions, key))
            want = sorted(
                row
                for row in reference
                if all(row[p] == kv for p, kv in zip(positions, key_values))
            )
            assert got == want, (positions, key)
        elif action < 0.95:
            marks.append((store.watermark(), len(reference)))
        elif marks:
            mark, at = marks.pop(rng.randrange(len(marks)))
            views = store.deltas_since(mark)
            got = sorted(row for view in views.values() for row in view.id_rows())
            assert got == sorted(reference[at:])

    # Closing sweep: every index the run built must still agree with a
    # full scan on every row's key.
    if relation is not None:
        for positions in list(relation._indexes):
            for row in reference:
                key_values = tuple(row[p] for p in positions)
                key = key_values[0] if len(positions) == 1 else key_values
                got = sorted(relation.row(i) for i in relation.lookup(positions, key))
                want = sorted(
                    r
                    for r in reference
                    if all(r[p] == kv for p, kv in zip(positions, key_values))
                )
                assert got == want


def test_pattern_index_empty_positions_scans_everything():
    store = ColumnarStore(SymbolTable())
    for u, v in [(1, 2), (2, 3), (3, 4)]:
        store.insert_fact(Fact("E", (u, v)))
    relation = store.relation("E")
    assert sorted(relation.lookup((), ())) == [0, 1, 2]


def test_pattern_index_miss_returns_empty():
    store = ColumnarStore(SymbolTable())
    store.insert_fact(Fact("E", (1, 2)))
    relation = store.relation("E")
    sid = store.symbols.intern(99)
    assert relation.lookup((0,), sid) == []


# -- delta views ----------------------------------------------------------


def test_watermark_and_delta_views():
    store = ColumnarStore(SymbolTable())
    store.insert_fact(Fact("E", (1, 2)))
    mark = store.watermark()
    assert store.deltas_since(mark) == {}
    store.insert_fact(Fact("E", (2, 3)))
    store.insert_fact(Fact("E", (1, 2)))  # duplicate: must not enter a delta
    store.insert_fact(Fact("T", (1, 3)))
    deltas = store.deltas_since(mark)
    assert set(deltas) == {("E", 2), ("T", 2)}  # keyed by (predicate, arity)
    assert len(deltas[("E", 2)]) == 1 and len(deltas[("T", 2)]) == 1
    assert list(deltas[("E", 2)].facts(store.symbols)) == [Fact("E", (2, 3))]
    assert deltas[("T", 2)].predicate == "T"


def test_store_copy_is_independent_and_shares_symbols():
    store = ColumnarStore(SymbolTable())
    store.insert_fact(Fact("E", (1, 2)))
    clone = store.copy()
    assert clone.symbols is store.symbols
    clone.insert_fact(Fact("E", (2, 3)))
    assert store.size("E") == 1 and clone.size("E") == 2
    assert store.contains_fact(Fact("E", (1, 2)))
    assert not store.contains_fact(Fact("E", (2, 3)))


# -- the Database façade --------------------------------------------------


def test_database_materializes_columnar_store_lazily():
    db = Database.from_edges([(1, 2), (2, 3)])
    store = db.columnar_store()
    assert store is db.columnar_store()  # cached
    assert store.size("E") == 2
    assert set(store.facts()) == set(db.facts())
    db.add("E", 3, 4)
    fresh = db.columnar_store()
    assert fresh is not store  # invalidated on add
    assert fresh.size("E") == 3


# -- engine equivalence ---------------------------------------------------


def random_edge_db(seed: int, n: int, m: int) -> Database:
    rng = random.Random(seed)
    db = Database()
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            db.add("E", u, v)
    return db


@given(
    seed=st.integers(0, 5000),
    n=st.integers(3, 7),
    m=st.integers(3, 14),
    seeded_idbs=st.integers(0, 3),
)
@settings(max_examples=50, deadline=None)
def test_columnar_relevant_grounding_agrees_tc(seed, n, m, seeded_idbs):
    # seeded_idbs > 0 plants IDB-predicate facts in the input database:
    # their instances are found in round 0 and must not be re-emitted
    # when the fact is re-derived (the delta-view dedup guarantee).
    db = random_edge_db(seed, n, m)
    rng = random.Random(seed + 1)
    for _ in range(seeded_idbs):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            db.add("T", u, v)
    assert_engines_agree(TC, db)


@given(seed=st.integers(0, 5000), pairs=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_columnar_relevant_grounding_agrees_dyck(seed, pairs):
    rng = random.Random(seed)
    edges = []
    node = 0
    for _ in range(pairs):
        edges.append((node, "L", node + 1))
        edges.append((node + 1, "R", node + 2))
        node += 2
    for _ in range(pairs):
        u, v = rng.randrange(node + 1), rng.randrange(node + 1)
        if u != v:
            edges.append((u, rng.choice(["L", "R"]), v))
    db = Database.from_labeled_edges(edges)
    assert_engines_agree(dyck1(), db)


@given(seed=st.integers(0, 5000), n=st.integers(3, 6), m=st.integers(3, 10))
@settings(max_examples=25, deadline=None)
def test_columnar_derivable_facts_agree(seed, n, m):
    db = random_edge_db(seed, n, m)
    indexed_facts, indexed_iters = derivable_facts(TC, db, engine="indexed")
    columnar_facts, columnar_iters = derivable_facts(TC, db, engine="columnar")
    assert indexed_facts == columnar_facts
    assert indexed_iters == columnar_iters


@given(seed=st.integers(0, 5000), n=st.integers(3, 5), m=st.integers(3, 7))
@settings(max_examples=20, deadline=None)
def test_columnar_full_grounding_agrees(seed, n, m):
    db = random_edge_db(seed, n, m)
    assert rule_set(full_grounding(TC, db, engine="indexed")) == rule_set(
        full_grounding(TC, db, engine="columnar")
    )


@given(seed=st.integers(0, 5000), n=st.integers(3, 6), m=st.integers(3, 10))
@settings(max_examples=20, deadline=None)
def test_columnar_fixpoint_values_agree(seed, n, m):
    db = random_edge_db(seed, n, m)
    rng = random.Random(seed)
    weights = {fact: float(rng.randint(1, 5)) for fact in db.facts()}
    via_indexed = FixpointEngine(grounding_engine="indexed").evaluate(
        TC, db, TROPICAL, weights=weights
    )
    via_columnar = FixpointEngine(grounding_engine="columnar").evaluate(
        TC, db, TROPICAL, weights=weights
    )
    assert via_indexed.values == via_columnar.values
    assert via_indexed.iterations == via_columnar.iterations


def test_columnar_agrees_on_same_generation_and_magic():
    rng = random.Random(7)
    db = Database()
    for _ in range(12):
        db.add(rng.choice(["Up", "Flat", "Down"]), rng.randrange(6), rng.randrange(6))
    assert_engines_agree(same_generation(), db)

    graph = random_digraph(14, 24, seed=7)
    assert rule_set(magic_grounding(TC, 0, graph, engine="naive")) == rule_set(
        magic_grounding(TC, 0, graph, engine="columnar")
    )


def test_columnar_boolean_fixpoint_on_weighted_workload():
    database = random_digraph(20, 60, seed=11)
    weights = random_weights(database, seed=11)
    a = FixpointEngine(grounding_engine="columnar").evaluate(
        TC, database, BOOLEAN, weights={f: True for f in weights}
    )
    b = FixpointEngine(grounding_engine="naive").evaluate(
        TC, database, BOOLEAN, weights={f: True for f in weights}
    )
    assert a.values == b.values


def test_rule_constants_unknown_to_store_never_match_or_intern():
    """A body constant the store has never interned can match no row;
    the columnar engine must ground identically to naive without
    growing the shared symbol table (lookups use the non-inserting
    SymbolTable.get)."""
    from repro.datalog import GLOBAL_SYMBOLS, parse_program

    program = parse_program("T(X, Y) :- E(X, Y), E(Y, 99).", target="T")
    db = Database.from_edges([(1, 2), (2, 3)])
    db.columnar_store()  # materialize first so growth isolates the grounder
    before = len(GLOBAL_SYMBOLS)
    assert len(relevant_grounding(program, db, engine="columnar").rules) == 0
    assert len(relevant_grounding(program, db, engine="naive").rules) == 0
    assert len(GLOBAL_SYMBOLS) == before
    assert GLOBAL_SYMBOLS.get(99) is None

    # ... and when the constant is present, the engines agree as usual.
    db2 = Database.from_edges([(1, 2), (2, 99)])
    assert_engines_agree(program, db2)


def test_head_constants_chain_into_body_lookups():
    """A constant introduced only by a rule head must still be
    matchable by other bodies (heads are interned before any join)."""
    from repro.datalog import parse_program

    program = parse_program(
        """
        P(X, 777) :- E(X, Y).
        Q(Z) :- P(Z, 777).
        """,
        target="Q",
    )
    db = Database.from_edges([(1, 2), (2, 3)])
    naive_facts, _ = derivable_facts(program, db, engine="naive")
    columnar_facts, _ = derivable_facts(program, db, engine="columnar")
    assert naive_facts == columnar_facts
    assert Fact("Q", (1,)) in columnar_facts


def test_symbol_table_clear_resets_in_place():
    table = SymbolTable()
    ids = table.intern_row(("a", "b", (1, 2)))
    assert len(table) == 3 and len(set(ids)) == 3
    table.clear()
    assert len(table) == 0
    assert table.get("a") is None
    assert "b" not in table
    # Dense ids restart from 0: the table object itself survives.
    assert table.intern("c") == 0


def test_scoped_symbols_keeps_default_table_clean():
    """The GLOBAL_SYMBOLS leak regression (ISSUE 5): a workload run
    inside scoped_symbols() must not intern a single constant into the
    surrounding default table, across every columnar entry point."""
    from repro.datalog import GLOBAL_SYMBOLS, columnar_grounding, default_symbols

    outer = default_symbols()
    outer_before = len(outer)
    global_before = len(GLOBAL_SYMBOLS)
    with scoped_symbols() as table:
        assert default_symbols() is table
        db = Database.from_edges([("scoped-only-u", "scoped-only-v")])
        store = db.columnar_store()
        assert store.symbols is table
        assert len(relevant_grounding(TC, db, engine="columnar").rules) == 1
        assert len(columnar_grounding(TC, db)) == 1
        assert len(table) > 0
    assert default_symbols() is outer
    assert len(outer) == outer_before
    assert len(GLOBAL_SYMBOLS) == global_before
    assert GLOBAL_SYMBOLS.get("scoped-only-u") is None
    # Objects built inside the scope stay usable after exit.
    assert store.contains_fact(Fact("E", ("scoped-only-u", "scoped-only-v")))


def test_scoped_symbols_nests_and_accepts_explicit_table():
    from repro.datalog import default_symbols

    mine = SymbolTable()
    with scoped_symbols() as outer:
        assert default_symbols() is outer
        with scoped_symbols(mine) as inner:
            assert inner is mine
            assert default_symbols() is mine
            ColumnarStore().insert_fact(Fact("E", ("nested-constant",)))
        assert default_symbols() is outer
        assert outer.get("nested-constant") is None
    assert mine.get("nested-constant") is not None


def test_columnar_store_private_symbol_table_sticks():
    from repro.datalog import GLOBAL_SYMBOLS

    table = SymbolTable()
    db = Database.from_edges([("private-only-u", "private-only-v")])
    store = db.columnar_store(symbols=table)
    assert store.symbols is table and len(table) == 2
    assert GLOBAL_SYMBOLS.get("private-only-u") is None
    # The table sticks: later no-arg materializations (what the
    # columnar grounding engine triggers internally) reuse it, across
    # cache invalidations too.
    assert db.columnar_store(symbols=table) is store
    assert db.columnar_store() is store
    db.add("E", "private-only-u", "private-only-w")
    assert db.columnar_store().symbols is table
    assert GLOBAL_SYMBOLS.get("private-only-w") is None
    ground = relevant_grounding(TC, db, engine="columnar")
    assert len(ground.rules) > 0
    assert GLOBAL_SYMBOLS.get("private-only-u") is None  # engine stayed scoped


# -- probe regression -----------------------------------------------------


def test_columnar_probes_halved_vs_naive_on_tc():
    db = random_digraph(24, 72, seed=5)
    naive_probes, _ = count_join_probes(
        lambda: relevant_grounding(TC, db, engine="naive")
    )
    columnar_probes, _ = count_join_probes(
        lambda: relevant_grounding(TC, db, engine="columnar")
    )
    assert columnar_probes > 0
    assert naive_probes >= 2 * columnar_probes, (naive_probes, columnar_probes)


def test_columnar_probes_match_indexed_on_magic_chain():
    """Columnar and indexed share selectivity ordering and exact-pattern
    candidate sets, so their probe counts coincide -- the columnar win
    is constant-factor (id-space rows, array columns), not probe count."""
    db = random_digraph(30, 60, seed=3)
    magic = magic_specialize(TC, 0)
    indexed_probes, _ = count_join_probes(
        lambda: relevant_grounding(magic, db, engine="indexed")
    )
    columnar_probes, _ = count_join_probes(
        lambda: relevant_grounding(magic, db, engine="columnar")
    )
    assert columnar_probes == indexed_probes, (indexed_probes, columnar_probes)
