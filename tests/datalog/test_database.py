"""Annotated databases."""

from repro.datalog import Database, Fact
from repro.semirings import TROPICAL


def test_add_and_contains():
    db = Database()
    fact = db.add("E", 1, 2)
    assert fact == Fact("E", (1, 2))
    assert fact in db
    assert Fact("E", (2, 1)) not in db


def test_size_is_total_fact_count():
    db = Database.from_edges([(1, 2), (2, 3)])
    db.add("A", 1)
    assert len(db) == 3
    assert db.size == 3


def test_active_domain():
    db = Database.from_edges([(1, 2), (2, 3)])
    db.add("A", "x")
    assert db.active_domain() == {1, 2, 3, "x"}


def test_facts_iteration_sorted_and_filtered():
    db = Database.from_edges([(2, 3), (1, 2)])
    db.add("A", 9)
    all_facts = list(db.facts())
    assert len(all_facts) == 3
    e_facts = list(db.facts("E"))
    assert all(f.predicate == "E" for f in e_facts)


def test_duplicate_insert_is_idempotent():
    db = Database()
    db.add("E", 1, 2)
    db.add("E", 1, 2)
    assert len(db) == 1


def test_weights_and_valuation():
    db = Database()
    f1 = db.add("E", 1, 2, weight=5.0)
    f2 = db.add("E", 2, 3)
    valuation = db.valuation(TROPICAL)
    assert valuation[f1] == 5.0
    assert valuation[f2] == TROPICAL.one  # default 1 = 0.0


def test_set_weight_checks_membership():
    db = Database()
    fact = db.add("E", 1, 2)
    db.set_weight(fact, 7.0)
    assert db.weight(fact) == 7.0
    import pytest

    with pytest.raises(KeyError):
        db.set_weight(Fact("E", (9, 9)), 1.0)


def test_from_labeled_edges():
    db = Database.from_labeled_edges([(0, "a", 1), (1, "b", 2)])
    assert db.predicates() == {"a", "b"}
    assert Fact("a", (0, 1)) in db


def test_copy_is_independent():
    db = Database.from_edges([(1, 2)])
    db.set_weight(Fact("E", (1, 2)), 3.0)
    clone = db.copy()
    clone.add("E", 5, 6)
    assert len(db) == 1
    assert clone.weight(Fact("E", (1, 2))) == 3.0


def test_tuples_view():
    db = Database.from_edges([(1, 2), (3, 4)])
    assert db.tuples("E") == {(1, 2), (3, 4)}
    assert db.tuples("missing") == frozenset()


def test_repr():
    assert "E:2" in repr(Database.from_edges([(1, 2), (2, 3)]))


# -- derived-view caches (invalidate on mutation) -------------------------


def test_active_domain_cached_and_invalidated_on_add():
    db = Database.from_edges([(1, 2)])
    first = db.active_domain()
    assert first == {1, 2}
    assert db.active_domain() is first  # cached: no rescan between adds
    db.add("E", 2, 3)
    assert db.active_domain() == {1, 2, 3}  # invalidated by the insert
    db.add("E", 1, 2)  # duplicate: nothing changed, cache may survive
    assert db.active_domain() == {1, 2, 3}


def test_valuation_cached_and_invalidated_on_add_and_set_weight():
    db = Database.from_edges([(1, 2), (2, 3)])
    f12, f23 = Fact("E", (1, 2)), Fact("E", (2, 3))
    first = db.valuation(TROPICAL)
    assert first == {f12: TROPICAL.one, f23: TROPICAL.one}
    # Each call returns a private copy: mutating it must not leak into
    # the cache.
    first[f12] = 99.0
    assert db.valuation(TROPICAL)[f12] == TROPICAL.one
    db.set_weight(f12, 5.0)
    assert db.valuation(TROPICAL)[f12] == 5.0  # invalidated by set_weight
    f34 = db.add("E", 3, 4, weight=7.0)
    valuation = db.valuation(TROPICAL)
    assert valuation[f34] == 7.0  # invalidated by add
    assert valuation[f12] == 5.0


def test_valuation_cache_is_per_semiring():
    from repro.semirings import BOOLEAN

    db = Database.from_edges([(1, 2)])
    fact = Fact("E", (1, 2))
    assert db.valuation(TROPICAL)[fact] == 0.0  # tropical 1 is 0.0
    assert db.valuation(BOOLEAN)[fact] is True


def test_valuation_cache_is_bounded():
    from repro.semirings.numeric import CappedCountingSemiring

    db = Database.from_edges([(1, 2)])
    for q in range(1, 3 * Database._VALUATION_CACHE_SIZE):
        db.valuation(CappedCountingSemiring(q))
    assert len(db._valuation_cache) <= Database._VALUATION_CACHE_SIZE


def test_copy_carries_private_symbol_scope():
    from repro.datalog import GLOBAL_SYMBOLS, SymbolTable

    db = Database.from_edges([("copy-scope-u", "copy-scope-v")])
    table = SymbolTable()
    db.columnar_store(symbols=table)
    clone = db.copy()
    assert clone.columnar_store().symbols is table
    assert GLOBAL_SYMBOLS.get("copy-scope-u") is None


def test_facts_iteration_unaffected_by_caching():
    db = Database.from_edges([(2, 3), (1, 2)])
    before = list(db.facts())
    assert list(db.facts()) == before
    db.add("A", 9)
    after = list(db.facts())
    assert len(after) == 3
    assert Fact("A", (9,)) in after


# -- delta-aware invalidation with a maintainer attached -------------------


def test_cached_valuation_survives_unrelated_mutation_with_maintainer():
    """Regression (DESIGN.md §11): with a MaintainedFixpoint attached,
    a single-fact write patches the cached valuation in place -- the
    same dict object survives a mutation of an *unrelated* relation
    and stays correct, instead of being rebuilt from scratch."""
    from repro.datalog import MaintainedFixpoint, transitive_closure

    db = Database.from_edges([(1, 2), (2, 3)])
    MaintainedFixpoint(transitive_closure(), db)

    assert db.valuation(TROPICAL) == {
        Fact("E", (1, 2)): 0.0,
        Fact("E", (2, 3)): 0.0,
    }
    cached = db._valuation_cache[id(TROPICAL)][1]

    # Writes against a relation the query never touches.
    db.add("Label", "a", weight=4.0)
    assert db._valuation_cache[id(TROPICAL)][1] is cached
    assert db.valuation(TROPICAL)[Fact("Label", ("a",))] == 4.0

    db.set_weight(Fact("Label", ("a",)), 6.0)
    assert db._valuation_cache[id(TROPICAL)][1] is cached
    assert db.valuation(TROPICAL)[Fact("Label", ("a",))] == 6.0

    db.retract("Label", "a")
    assert db._valuation_cache[id(TROPICAL)][1] is cached
    valuation = db.valuation(TROPICAL)
    assert Fact("Label", ("a",)) not in valuation
    assert valuation[Fact("E", (1, 2))] == 0.0

    # The columnar snapshot is patched in place as well.
    store = db.columnar_store()
    db.add("Label", "b")
    assert db.columnar_store() is store
    assert store.relation("Label") is not None and len(store.relation("Label")) == 1


def test_wholesale_invalidation_without_maintainer():
    """Without a maintainer the historical behavior stands: any write
    drops the cached valuation wholesale."""
    db = Database.from_edges([(1, 2)])
    db.valuation(TROPICAL)
    db.add("Label", "a")
    assert not db._valuation_cache
    db.valuation(TROPICAL)
    db.retract("Label", "a")
    assert not db._valuation_cache


def test_detached_maintainer_restores_wholesale_invalidation():
    from repro.datalog import MaintainedFixpoint, transitive_closure

    db = Database.from_edges([(1, 2)])
    fix = MaintainedFixpoint(transitive_closure(), db)
    db.valuation(TROPICAL)
    fix.detach()
    db.add("E", 2, 3)
    assert not db._valuation_cache
