"""Annotated databases."""

from repro.datalog import Database, Fact
from repro.semirings import TROPICAL


def test_add_and_contains():
    db = Database()
    fact = db.add("E", 1, 2)
    assert fact == Fact("E", (1, 2))
    assert fact in db
    assert Fact("E", (2, 1)) not in db


def test_size_is_total_fact_count():
    db = Database.from_edges([(1, 2), (2, 3)])
    db.add("A", 1)
    assert len(db) == 3
    assert db.size == 3


def test_active_domain():
    db = Database.from_edges([(1, 2), (2, 3)])
    db.add("A", "x")
    assert db.active_domain() == {1, 2, 3, "x"}


def test_facts_iteration_sorted_and_filtered():
    db = Database.from_edges([(2, 3), (1, 2)])
    db.add("A", 9)
    all_facts = list(db.facts())
    assert len(all_facts) == 3
    e_facts = list(db.facts("E"))
    assert all(f.predicate == "E" for f in e_facts)


def test_duplicate_insert_is_idempotent():
    db = Database()
    db.add("E", 1, 2)
    db.add("E", 1, 2)
    assert len(db) == 1


def test_weights_and_valuation():
    db = Database()
    f1 = db.add("E", 1, 2, weight=5.0)
    f2 = db.add("E", 2, 3)
    valuation = db.valuation(TROPICAL)
    assert valuation[f1] == 5.0
    assert valuation[f2] == TROPICAL.one  # default 1 = 0.0


def test_set_weight_checks_membership():
    db = Database()
    fact = db.add("E", 1, 2)
    db.set_weight(fact, 7.0)
    assert db.weight(fact) == 7.0
    import pytest

    with pytest.raises(KeyError):
        db.set_weight(Fact("E", (9, 9)), 1.0)


def test_from_labeled_edges():
    db = Database.from_labeled_edges([(0, "a", 1), (1, "b", 2)])
    assert db.predicates() == {"a", "b"}
    assert Fact("a", (0, 1)) in db


def test_copy_is_independent():
    db = Database.from_edges([(1, 2)])
    db.set_weight(Fact("E", (1, 2)), 3.0)
    clone = db.copy()
    clone.add("E", 5, 6)
    assert len(db) == 1
    assert clone.weight(Fact("E", (1, 2))) == 3.0


def test_tuples_view():
    db = Database.from_edges([(1, 2), (3, 4)])
    assert db.tuples("E") == {(1, 2), (3, 4)}
    assert db.tuples("missing") == frozenset()


def test_repr():
    assert "E:2" in repr(Database.from_edges([(1, 2), (2, 3)]))
