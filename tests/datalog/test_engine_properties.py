"""Hypothesis properties of the Datalog engine on random graphs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    Database,
    derivable_facts,
    enumerate_tight_proof_trees,
    naive_evaluation,
    provenance_by_proof_trees,
    relevant_grounding,
    transitive_closure,
)
from repro.semirings import BOOLEAN, TROPICAL

TC = transitive_closure()


def random_edge_db(seed: int, n: int, m: int) -> Database:
    rng = random.Random(seed)
    db = Database()
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            db.add("E", u, v)
    return db


@given(seed=st.integers(0, 5000), n=st.integers(3, 6), m=st.integers(3, 10))
@settings(max_examples=40, deadline=None)
def test_grounding_heads_equal_derivable_facts(seed, n, m):
    db = random_edge_db(seed, n, m)
    ground = relevant_grounding(TC, db)
    derived, _ = derivable_facts(TC, db)
    assert ground.idb_facts == derived


@given(seed=st.integers(0, 5000), n=st.integers(3, 6), m=st.integers(3, 9))
@settings(max_examples=30, deadline=None)
def test_tight_trees_evaluate_to_fixpoint(seed, n, m):
    db = random_edge_db(seed, n, m)
    rng = random.Random(seed)
    weights = {fact: float(rng.randint(1, 5)) for fact in db.facts()}
    result = naive_evaluation(TC, db, TROPICAL, weights=weights)
    ground = relevant_grounding(TC, db)
    for fact in list(ground.idb_facts)[:4]:
        poly = provenance_by_proof_trees(TC, db, fact, ground=ground)
        assert poly.evaluate(TROPICAL, weights) == result.value(fact)


@given(seed=st.integers(0, 5000), n=st.integers(3, 6), m=st.integers(3, 10))
@settings(max_examples=30, deadline=None)
def test_tight_trees_are_tight_and_grounded(seed, n, m):
    db = random_edge_db(seed, n, m)
    ground = relevant_grounding(TC, db)
    for fact in list(ground.idb_facts)[:3]:
        for tree in enumerate_tight_proof_trees(ground, fact, limit=20):
            assert tree.is_tight()
            assert tree.fact == fact
            for leaf in tree.leaves():
                assert leaf in db


@given(seed=st.integers(0, 5000), n=st.integers(3, 6), m=st.integers(3, 10))
@settings(max_examples=30, deadline=None)
def test_boolean_evaluation_equals_derivability(seed, n, m):
    db = random_edge_db(seed, n, m)
    derived, _ = derivable_facts(TC, db)
    result = naive_evaluation(TC, db, BOOLEAN)
    positives = {fact for fact, value in result.values.items() if value}
    assert positives == derived


@given(seed=st.integers(0, 5000), n=st.integers(3, 5), m=st.integers(3, 8))
@settings(max_examples=20, deadline=None)
def test_monotonicity_under_edge_insertion(seed, n, m):
    # Datalog over a positive semiring is monotone: adding a fact can
    # only (weakly) increase the derivable set.
    db = random_edge_db(seed, n, m)
    before, _ = derivable_facts(TC, db)
    db.add("E", 0, n - 1)
    after, _ = derivable_facts(TC, db)
    assert before <= after
