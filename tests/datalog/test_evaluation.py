"""Naive evaluation over semirings, cross-checked against networkx."""

import math

import networkx as nx
import pytest

from repro.datalog import (
    Database,
    Fact,
    boolean_iterations,
    evaluate_fact,
    naive_evaluation,
    transitive_closure,
)
from repro.semirings import BOOLEAN, COUNTING, TROPICAL, VITERBI
from repro.workloads import random_digraph, random_weights


def test_boolean_tc_matches_networkx_reachability():
    db = random_digraph(12, 24, seed=3)
    graph = nx.DiGraph(db.tuples("E"))
    result = naive_evaluation(transitive_closure(), db, BOOLEAN)
    derived = {f.args for f, v in result.values.items() if v}
    # Non-empty-path reachability: BFS from each successor set, so that
    # (u, u) is included exactly when u lies on a cycle.
    expected = set()
    for u in graph.nodes:
        frontier = list(graph.successors(u))
        seen = set(frontier)
        while frontier:
            node = frontier.pop()
            for nxt in graph.successors(node):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        expected.update((u, v) for v in seen)
    assert derived == expected


def test_tropical_tc_matches_dijkstra():
    db = random_digraph(10, 20, seed=7)
    weights = random_weights(db, seed=7)
    graph = nx.DiGraph()
    for fact, w in weights.items():
        graph.add_edge(fact.args[0], fact.args[1], weight=w)
    result = naive_evaluation(transitive_closure(), db, TROPICAL, weights=weights)
    lengths = dict(nx.all_pairs_dijkstra_path_length(graph))
    for fact, value in result.values.items():
        u, v = fact.args
        if u == v:
            continue  # TC's T(u,u) sums nonempty cycles, not the 0 path
        assert math.isclose(value, lengths[u][v]), (fact, value, lengths[u][v])


def test_counting_tc_counts_paths_on_dag():
    # 0→1→3, 0→2→3, 0→3: three paths 0→3.
    db = Database.from_edges([(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)])
    value = evaluate_fact(transitive_closure(), db, COUNTING, Fact("T", (0, 3)))
    assert value == 3


def test_counting_diverges_on_cycle():
    db = Database.from_edges([(0, 1), (1, 0), (0, 2)])
    result = naive_evaluation(
        transitive_closure(), db, COUNTING, max_iterations=30
    )
    assert not result.converged


def test_counting_divergence_raises_when_asked():
    from repro.datalog.evaluation import DivergenceError

    db = Database.from_edges([(0, 1), (1, 0)])
    with pytest.raises(DivergenceError):
        naive_evaluation(
            transitive_closure(),
            db,
            COUNTING,
            max_iterations=10,
            raise_on_divergence=True,
        )


def test_absorptive_converges_within_n_iterations():
    db = random_digraph(9, 20, seed=1)
    result = naive_evaluation(transitive_closure(), db, TROPICAL, weights=random_weights(db))
    assert result.converged
    assert result.iterations <= len(result.values) + 2


def test_viterbi_best_path_probability():
    db = Database.from_edges([(0, 1), (1, 2), (0, 2)])
    weights = {
        Fact("E", (0, 1)): 0.9,
        Fact("E", (1, 2)): 0.9,
        Fact("E", (0, 2)): 0.5,
    }
    value = evaluate_fact(transitive_closure(), db, VITERBI, Fact("T", (0, 2)), weights)
    assert math.isclose(value, 0.81)


def test_unannotated_facts_default_to_one():
    db = Database.from_edges([(0, 1), (1, 2)])
    value = evaluate_fact(transitive_closure(), db, TROPICAL, Fact("T", (0, 2)))
    assert value == 0.0  # 1 ⊗ 1 = 0 + 0 in tropical


def test_underivable_fact_is_zero():
    db = Database.from_edges([(0, 1)])
    assert evaluate_fact(transitive_closure(), db, TROPICAL, Fact("T", (1, 0))) == math.inf
    assert evaluate_fact(transitive_closure(), db, BOOLEAN, Fact("T", (1, 0))) is False


def test_target_values_filter():
    db = Database.from_edges([(0, 1)])
    result = naive_evaluation(transitive_closure(), db, BOOLEAN)
    targets = result.target_values(transitive_closure())
    assert set(targets) == {Fact("T", (0, 1))}


def test_boolean_iterations_grow_with_diameter():
    short = boolean_iterations(
        transitive_closure(), Database.from_edges([(i, i + 1) for i in range(3)])
    )
    long = boolean_iterations(
        transitive_closure(), Database.from_edges([(i, i + 1) for i in range(12)])
    )
    assert long > short


def test_evaluation_reuses_precomputed_grounding():
    from repro.datalog import relevant_grounding

    db = Database.from_edges([(0, 1), (1, 2)])
    ground = relevant_grounding(transitive_closure(), db)
    result = naive_evaluation(transitive_closure(), db, BOOLEAN, ground=ground)
    assert result.value(Fact("T", (0, 2)))
