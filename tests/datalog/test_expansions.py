"""CQ expansions of linear programs (Example 4.4, Theorem 4.5)."""

import pytest

from repro.datalog import (
    Atom,
    DatalogError,
    Variable,
    canonical_database,
    dyck1,
    expansion_of_word,
    expansion_words,
    expansions,
    expansions_up_to,
    reachability,
    transitive_closure,
    unify_atoms,
)


def test_unify_atoms_basic():
    X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
    theta = unify_atoms(Atom("E", (X, Y)), Atom("E", (Z, Z)))
    assert theta is not None
    # X and Y both unify with Z (transitively equal).
    assert theta[X] == theta[Y] == theta.get(Z, theta[X])


def test_unify_atoms_clash():
    from repro.datalog import Constant

    a = Atom("E", (Constant(1),))
    b = Atom("E", (Constant(2),))
    assert unify_atoms(a, b) is None
    assert unify_atoms(Atom("E", (Constant(1),)), Atom("R", (Constant(1),))) is None


def test_tc_expansions_are_paths():
    # Example 4.4: Cᵢ is the path CQ with i+1 edges.
    tc = transitive_closure()
    for steps in range(4):
        group = expansions(tc, steps)
        assert len(group) == 1
        cq = group[0]
        assert len(cq.body) == steps + 1
        assert all(atom.predicate == "E" for atom in cq.body)
        # the body must form a connected chain from head X0 to X1
        assert cq.head.predicate == "T"


def test_expansion_words_shape():
    tc = transitive_closure()
    words = list(expansion_words(tc, 2))
    assert words == [(1, 1, 0)]  # two recursive applications then init


def test_reachability_expansions():
    program = reachability()
    group = expansions(program, 2)
    assert len(group) == 1
    cq = group[0]
    predicates = sorted(a.predicate for a in cq.body)
    assert predicates == ["A", "E", "E"]


def test_expansions_up_to():
    groups = expansions_up_to(transitive_closure(), 3)
    assert [len(g) for g in groups] == [1, 1, 1, 1]


def test_expansion_invalid_word_rejected():
    tc = transitive_closure()
    with pytest.raises(DatalogError):
        expansion_of_word(tc, (0, 0))  # init rule cannot be mid-word
    with pytest.raises(DatalogError):
        expansion_of_word(tc, (1,))  # recursive rule cannot end a word


def test_expansions_require_linear_program():
    with pytest.raises(DatalogError):
        expansions(dyck1(), 1)


def test_canonical_database():
    tc = transitive_closure()
    cq = expansions(tc, 1)[0]  # E(X0,Z), E(Z,X1)
    db, mapping = canonical_database(cq)
    assert len(db) == 2
    assert len(mapping) == len(cq.variables)
    # the canonical database satisfies the CQ by construction: freeze
    # head vars and check the path exists
    tuples = db.tuples("E")
    assert len(tuples) == 2


def test_expansion_variables_fresh_per_step():
    tc = transitive_closure()
    cq = expansions(tc, 3)[0]
    # 5 edges → 5 distinct join variables + 2 head vars... body is a
    # 4-edge path with 3 internal variables; all distinct.
    variables = cq.variables
    assert len(variables) == len(set(variables))
    assert len(cq.body) == 4
