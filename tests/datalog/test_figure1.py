"""Exact reproduction of Figure 1 and its provenance polynomial.

The paper's Figure 1 gives a 7-edge EDB, shows one of the three proof
trees of ``T(s, t)``, and Section 2.4 spells out the polynomial::

    p = (x_{s,u1} ⊗ x_{u1,v1} ⊗ x_{v1,t})
      ⊕ (x_{s,u1} ⊗ x_{u1,v2} ⊗ x_{v2,t})
      ⊕ (x_{s,u2} ⊗ x_{u2,v2} ⊗ x_{v2,t})

These tests pin that artifact exactly.
"""

from repro.circuits import canonical_polynomial
from repro.constructions import bellman_ford_circuit, generic_circuit
from repro.datalog import (
    Fact,
    count_tight_proof_trees,
    provenance_by_proof_trees,
    relevant_grounding,
)
from repro.semirings import Monomial, Polynomial, TROPICAL


def expected_polynomial() -> Polynomial:
    def mono(*pairs):
        return Monomial({Fact("E", pair): 1 for pair in pairs})

    return Polynomial(
        [
            mono(("s", "u1"), ("u1", "v1"), ("v1", "t")),
            mono(("s", "u1"), ("u1", "v2"), ("v2", "t")),
            mono(("s", "u2"), ("u2", "v2"), ("v2", "t")),
        ]
    )


def test_figure1_polynomial_by_proof_trees(figure1_db, figure1_fact, tc_program):
    poly = provenance_by_proof_trees(tc_program, figure1_db, figure1_fact)
    assert poly == expected_polynomial()


def test_figure1_exactly_three_proof_trees(figure1_db, figure1_fact, tc_program):
    ground = relevant_grounding(tc_program, figure1_db)
    assert count_tight_proof_trees(ground, figure1_fact) == 3


def test_figure1_polynomial_by_circuit(figure1_db, figure1_fact, tc_program):
    circuit = generic_circuit(tc_program, figure1_db, figure1_fact)
    assert canonical_polynomial(circuit) == expected_polynomial()


def test_figure1_tropical_value_is_three(figure1_db, tc_program):
    # Unit edge weights: every s–t path has length 3.
    weights = {fact: 1.0 for fact in figure1_db.facts()}
    circuit = bellman_ford_circuit(figure1_db, "s", "t")
    from repro.circuits import evaluate

    assert evaluate(circuit, TROPICAL, weights) == 3.0


def test_figure1_proof_tree_of_the_paper(figure1_db, figure1_fact, tc_program):
    # The tree drawn in Figure 1c: T(s,t) via T(s,v1) via T(s,u1).
    from repro.datalog import enumerate_tight_proof_trees

    ground = relevant_grounding(tc_program, figure1_db)
    leaves_of_paper_tree = sorted(["E(s,u1)", "E(u1,v1)", "E(v1,t)"])
    found = False
    for tree in enumerate_tight_proof_trees(ground, figure1_fact):
        if sorted(map(repr, tree.leaves())) == leaves_of_paper_tree:
            found = True
            assert tree.height() == 3
    assert found
