"""Full vs relevant grounding; derivability."""

import pytest

from repro.datalog import (
    Database,
    DatalogError,
    Fact,
    derivable_facts,
    dyck1,
    full_grounding,
    relevant_grounding,
    transitive_closure,
)


def small_db():
    return Database.from_edges([(0, 1), (1, 2)])


def test_derivable_facts_tc():
    derived, iterations = derivable_facts(transitive_closure(), small_db())
    assert derived == {
        Fact("T", (0, 1)),
        Fact("T", (1, 2)),
        Fact("T", (0, 2)),
    }
    assert iterations >= 2


def test_relevant_grounding_heads_are_derivable():
    ground = relevant_grounding(transitive_closure(), small_db())
    derived, _ = derivable_facts(transitive_closure(), small_db())
    assert ground.idb_facts == derived


def test_relevant_grounding_rule_shapes():
    ground = relevant_grounding(transitive_closure(), small_db())
    rules_for_02 = ground.rules_for(Fact("T", (0, 2)))
    assert len(rules_for_02) == 1
    rule = rules_for_02[0]
    assert rule.idb_body == (Fact("T", (0, 1)),)
    assert rule.edb_body == (Fact("E", (1, 2)),)
    assert rule.rule_index == 1


def test_full_grounding_contains_relevant_rules():
    program = transitive_closure()
    db = small_db()
    full = full_grounding(program, db)
    relevant = relevant_grounding(program, db)
    full_keys = {(r.head, r.idb_body, r.edb_body) for r in full.rules}
    relevant_keys = {(r.head, r.idb_body, r.edb_body) for r in relevant.rules}
    assert relevant_keys <= full_keys


def test_full_grounding_keeps_underivable_idb_bodies():
    # Full grounding keeps rules with underivable IDB body facts (their
    # value is 0); relevant grounding drops them.
    program = transitive_closure()
    db = small_db()
    full = full_grounding(program, db)
    relevant = relevant_grounding(program, db)
    assert len(full.rules) > len(relevant.rules)


def test_full_grounding_explosion_guard():
    program = transitive_closure()
    db = Database.from_edges([(i, i + 1) for i in range(60)])
    with pytest.raises(DatalogError):
        full_grounding(program, db, max_instantiations=1000)


def test_grounding_size_metric():
    ground = relevant_grounding(transitive_closure(), small_db())
    assert ground.size == sum(1 + len(r.body) for r in ground.rules)
    assert len(ground) == len(ground.rules)


def test_target_facts():
    ground = relevant_grounding(transitive_closure(), small_db())
    assert ground.target_facts() == [
        Fact("T", (0, 1)),
        Fact("T", (0, 2)),
        Fact("T", (1, 2)),
    ]


def test_max_body_idbs():
    db = Database.from_labeled_edges([(0, "L", 1), (1, "R", 2)])
    ground = relevant_grounding(dyck1(), db)
    assert ground.max_body_idbs() <= 2


def test_nonlinear_grounding_dyck():
    edges = [(0, "L", 1), (1, "L", 2), (2, "R", 3), (3, "R", 4)]
    db = Database.from_labeled_edges(edges)
    ground = relevant_grounding(dyck1(), db)
    assert Fact("S", (1, 3)) in ground.idb_facts
    assert Fact("S", (0, 4)) in ground.idb_facts
    # the nested derivation uses rule 1 (L S R)
    rules = ground.rules_for(Fact("S", (0, 4)))
    assert any(r.rule_index == 1 for r in rules)


def test_grounding_with_constants_in_program():
    from repro.datalog import parse_program

    program = parse_program("Hit(X) :- E(X, 2).")
    db = Database.from_edges([(0, 1), (1, 2), (3, 2)])
    ground = relevant_grounding(program, db)
    assert ground.idb_facts == {Fact("Hit", (1,)), Fact("Hit", (3,))}


def test_empty_database_grounding():
    ground = relevant_grounding(transitive_closure(), Database())
    assert len(ground) == 0
    assert ground.idb_facts == frozenset()
