"""Indexed vs naive grounding engines: equivalence and probe regression.

The indexed engine (pattern-keyed hash indexes, selectivity-ordered
bodies, fused semi-naive pass) must be a pure optimization: identical
:class:`GroundProgram` (as a set of ground rules), identical derivable
facts and Boolean iteration counts, identical fixpoint values -- with
measurably fewer join probes.  DESIGN.md §5 describes the design;
these tests pin its observable contract.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    GROUNDING_STATS,
    Database,
    FixpointEngine,
    count_join_probes,
    derivable_facts,
    dyck1,
    full_grounding,
    magic_grounding,
    magic_specialize,
    naive_evaluation,
    relevant_grounding,
    same_generation,
    transitive_closure,
)
from repro.semirings import BOOLEAN, TROPICAL
from repro.workloads import random_digraph, random_weights

TC = transitive_closure()


def random_edge_db(seed: int, n: int, m: int) -> Database:
    rng = random.Random(seed)
    db = Database()
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            db.add("E", u, v)
    return db


def rule_set(ground):
    return ground.rule_keys()


def assert_same_ground_program(naive, indexed):
    # Same rules as a set, no duplicates on either side, same head index.
    assert rule_set(naive) == rule_set(indexed)
    assert len(naive.rules) == len(indexed.rules)
    assert naive.idb_facts == indexed.idb_facts
    for fact in naive.idb_facts:
        assert {
            (r.rule_index, r.idb_body, r.edb_body) for r in naive.rules_for(fact)
        } == {(r.rule_index, r.idb_body, r.edb_body) for r in indexed.rules_for(fact)}


# -- equivalence properties (seeded random digraphs) ---------------------


@given(
    seed=st.integers(0, 5000),
    n=st.integers(3, 7),
    m=st.integers(3, 14),
    seeded_idbs=st.integers(0, 3),
)
@settings(max_examples=60, deadline=None)
def test_relevant_grounding_engines_agree_tc(seed, n, m, seeded_idbs):
    # seeded_idbs > 0 puts facts for the IDB predicate directly in the
    # input database: instances over them are discoverable in round 0
    # *and* the facts may be re-derived later -- the fused pass must
    # not re-emit their instances (regression: duplicated GroundRules).
    db = random_edge_db(seed, n, m)
    rng = random.Random(seed + 1)
    for _ in range(seeded_idbs):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            db.add("T", u, v)
    assert_same_ground_program(
        relevant_grounding(TC, db, engine="naive"),
        relevant_grounding(TC, db, engine="indexed"),
    )


def test_no_duplicate_rules_with_database_idb_facts():
    # Minimal reproducer: T(2,3) is both an input fact and re-derived
    # from E(2,3), so its instance T(2,4) :- T(2,3), E(3,4) is found in
    # round 0 and must not be emitted again when T(2,3) enters a delta.
    db = Database.from_edges([(2, 3), (3, 4)])
    db.add("T", 2, 3)
    naive = relevant_grounding(TC, db, engine="naive")
    indexed = relevant_grounding(TC, db, engine="indexed")
    assert len(indexed.rules) == len(set(indexed.rules))
    assert_same_ground_program(naive, indexed)
    naive_facts, naive_iters = derivable_facts(TC, db, engine="naive")
    indexed_facts, indexed_iters = derivable_facts(TC, db, engine="indexed")
    assert naive_facts == indexed_facts
    assert naive_iters == indexed_iters


@given(seed=st.integers(0, 5000), pairs=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_relevant_grounding_engines_agree_dyck(seed, pairs):
    # Non-linear program: rules with two IDB body atoms exercise the
    # within-round duplicate handling of the fused pass.
    rng = random.Random(seed)
    edges = []
    node = 0
    for _ in range(pairs):
        edges.append((node, "L", node + 1))
        edges.append((node + 1, "R", node + 2))
        node += 2
    for _ in range(pairs):
        u, v = rng.randrange(node + 1), rng.randrange(node + 1)
        if u != v:
            edges.append((u, rng.choice(["L", "R"]), v))
    db = Database.from_labeled_edges(edges)
    assert_same_ground_program(
        relevant_grounding(dyck1(), db, engine="naive"),
        relevant_grounding(dyck1(), db, engine="indexed"),
    )


@given(seed=st.integers(0, 5000), n=st.integers(3, 6), m=st.integers(3, 10))
@settings(max_examples=30, deadline=None)
def test_derivable_facts_engines_agree(seed, n, m):
    db = random_edge_db(seed, n, m)
    naive_facts, naive_iters = derivable_facts(TC, db, engine="naive")
    indexed_facts, indexed_iters = derivable_facts(TC, db, engine="indexed")
    assert naive_facts == indexed_facts
    assert naive_iters == indexed_iters


@given(seed=st.integers(0, 5000), n=st.integers(3, 5), m=st.integers(3, 7))
@settings(max_examples=20, deadline=None)
def test_full_grounding_engines_agree(seed, n, m):
    db = random_edge_db(seed, n, m)
    assert_same_ground_program(
        full_grounding(TC, db, engine="naive"),
        full_grounding(TC, db, engine="indexed"),
    )


@given(seed=st.integers(0, 5000), n=st.integers(3, 6), m=st.integers(3, 10))
@settings(max_examples=20, deadline=None)
def test_fixpoint_values_engine_independent(seed, n, m):
    db = random_edge_db(seed, n, m)
    rng = random.Random(seed)
    weights = {fact: float(rng.randint(1, 5)) for fact in db.facts()}
    via_naive = FixpointEngine(grounding_engine="naive").evaluate(
        TC, db, TROPICAL, weights=weights
    )
    via_indexed = FixpointEngine(grounding_engine="indexed").evaluate(
        TC, db, TROPICAL, weights=weights
    )
    assert via_naive.values == via_indexed.values
    assert via_naive.iterations == via_indexed.iterations


def test_engines_agree_on_same_generation_and_magic():
    # Non-chain linear program with a 3-atom body, plus the specialized
    # magic program (constants inside rule bodies).
    rng = random.Random(7)
    db = Database()
    for _ in range(12):
        db.add(rng.choice(["Up", "Flat", "Down"]), rng.randrange(6), rng.randrange(6))
    assert_same_ground_program(
        relevant_grounding(same_generation(), db, engine="naive"),
        relevant_grounding(same_generation(), db, engine="indexed"),
    )

    graph = random_digraph(14, 24, seed=7)
    assert_same_ground_program(
        magic_grounding(TC, 0, graph, engine="naive"),
        magic_grounding(TC, 0, graph, engine="indexed"),
    )


# -- instrumentation and regression --------------------------------------


def test_join_probes_drop_on_magic_chain_program():
    """Regression: the indexed engine must cut join probes at least 2×
    on the magic-set specialized chain program (the Theorem 5.8
    workload; the probes counter is the metric of DESIGN.md §6)."""
    db = random_digraph(30, 60, seed=3)
    magic = magic_specialize(TC, 0)
    naive_probes, _ = count_join_probes(
        lambda: relevant_grounding(magic, db, engine="naive")
    )
    indexed_probes, _ = count_join_probes(
        lambda: relevant_grounding(magic, db, engine="indexed")
    )
    assert indexed_probes > 0
    assert naive_probes >= 2 * indexed_probes, (naive_probes, indexed_probes)


def test_join_probes_drop_on_tc():
    db = random_digraph(24, 72, seed=5)
    naive_probes, _ = count_join_probes(
        lambda: relevant_grounding(TC, db, engine="naive")
    )
    indexed_probes, _ = count_join_probes(
        lambda: relevant_grounding(TC, db, engine="indexed")
    )
    assert naive_probes >= 2 * indexed_probes, (naive_probes, indexed_probes)


def test_grounding_stats_counts_ground_rules():
    db = Database.from_edges([(0, 1), (1, 2)])
    GROUNDING_STATS.reset()
    ground = relevant_grounding(TC, db)
    assert GROUNDING_STATS.ground_rules == len(ground.rules)
    assert GROUNDING_STATS.matches <= GROUNDING_STATS.probes


# -- context-local probe capture (the GROUNDING_STATS satellite) ----------


def test_count_join_probes_does_not_touch_the_global_accumulator():
    """The ISSUE 5 stats-pollution regression: a capture is private --
    neither its counts leak into GROUNDING_STATS nor the global's
    prior counts leak into the capture."""
    db = random_digraph(10, 20, seed=0)
    GROUNDING_STATS.reset()
    GROUNDING_STATS.probes = 123_456  # stale noise a capture must not read
    probes, ground = count_join_probes(lambda: relevant_grounding(TC, db))
    assert 0 < probes < 123_456
    assert len(ground.rules) > 0
    assert GROUNDING_STATS.probes == 123_456  # untouched by the capture
    GROUNDING_STATS.reset()


def test_count_join_probes_nested_captures_stay_separate():
    db = random_digraph(10, 20, seed=1)
    solo_indexed, _ = count_join_probes(lambda: relevant_grounding(TC, db))
    solo_naive, _ = count_join_probes(
        lambda: relevant_grounding(TC, db, engine="naive")
    )
    assert solo_naive > solo_indexed

    def outer():
        inner, _ = count_join_probes(
            lambda: relevant_grounding(TC, db, engine="naive")
        )
        relevant_grounding(TC, db)
        return inner

    outer_probes, inner_probes = count_join_probes(outer)
    # The nested (naive, larger) capture stays out of the outer count.
    assert outer_probes == solo_indexed
    assert inner_probes == solo_naive


def test_count_join_probes_concurrent_runs_do_not_pollute_each_other():
    """Interleaved measurements from concurrent threads each see
    exactly their own run's probes (contextvars isolation)."""
    import threading

    small = random_digraph(8, 16, seed=2)
    big = random_digraph(16, 40, seed=3)
    solo_small, _ = count_join_probes(lambda: relevant_grounding(TC, small))
    solo_big, _ = count_join_probes(lambda: relevant_grounding(TC, big))
    assert solo_small != solo_big
    results = {}

    def measure(name, db, repeats):
        counts = [
            count_join_probes(lambda: relevant_grounding(TC, db))[0]
            for _ in range(repeats)
        ]
        results[name] = counts

    threads = [
        threading.Thread(target=measure, args=("small", small, 4)),
        threading.Thread(target=measure, args=("big", big, 4)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert results["small"] == [solo_small] * 4
    assert results["big"] == [solo_big] * 4


# -- knob validation ------------------------------------------------------


def test_unknown_engine_rejected():
    db = Database.from_edges([(0, 1)])
    with pytest.raises(ValueError):
        relevant_grounding(TC, db, engine="btree")
    with pytest.raises(ValueError):
        derivable_facts(TC, db, engine="btree")
    with pytest.raises(ValueError):
        full_grounding(TC, db, engine="btree")
    with pytest.raises(ValueError):
        FixpointEngine(grounding_engine="btree")


def test_engine_none_resolves_to_default():
    db = Database.from_edges([(0, 1), (1, 2)])
    assert_same_ground_program(
        relevant_grounding(TC, db),
        relevant_grounding(TC, db, engine=None),
    )
    result = naive_evaluation(TC, db, BOOLEAN, grounding_engine="naive")
    assert result.values == naive_evaluation(TC, db, BOOLEAN).values


def test_weighted_evaluation_matches_across_engines_at_scale():
    database = random_digraph(20, 60, seed=11)
    weights = random_weights(database, seed=11)
    naive_ground = relevant_grounding(TC, database, engine="naive")
    indexed_ground = relevant_grounding(TC, database, engine="indexed")
    a = naive_evaluation(TC, database, TROPICAL, weights=weights, ground=naive_ground)
    b = naive_evaluation(TC, database, TROPICAL, weights=weights, ground=indexed_ground)
    assert a.values == b.values
