"""Stream-vs-recompute tests for differential maintenance (DESIGN.md §11).

The contract under test: a :class:`MaintainedFixpoint` fed any
interleaving of single-fact inserts, retracts and reweights is
*indistinguishable* from throwing everything away and recomputing --
not just the values, but the live ground-rule set, the Jacobi
iteration count and the per-round rule-evaluation counter, because the
columnar kernel's trajectory depends only on the ground-rule set that
counting maintenance / DRed pruning keeps exactly equal to a fresh
grounding's.

Three layers:

* a Hypothesis :class:`RuleBasedStateMachine` drives random
  insert/retract/reweight/query streams over a DAG edge universe and
  checks the full equivalence invariant after **every** step, for
  BOOLEAN/COUNTING on an unweighted database and TROPICAL/COUNTING on
  an integer-weighted one (integer weights keep both semirings'
  arithmetic exact, so ``==`` is the right comparison), with a sampled
  query rule sweeping the whole grounding-engine × fixpoint-strategy
  matrix;
* metamorphic insert-then-retract tests: applying a batch of inserts
  and then retracting it (in reverse or shuffled order) must restore
  the *exact* prior state -- values, iterations, rule evaluations,
  ground-rule keys, per-fact support counts, symbol-table length and
  pattern-index row accounting all come back, on both the tuple and
  columnar fixpoint pipelines;
* targeted edge cases: cold start from an empty database, cyclic
  programs whose capped (diverged) state must self-heal through the
  full-kernel refresh path, the IDB-write guard, and listener
  plumbing.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

import pytest

from repro.config import GROUNDING_ENGINES, FIXPOINT_STRATEGIES
from repro.datalog import (
    Database,
    DatalogError,
    Fact,
    FixpointEngine,
    MaintainedFixpoint,
    columnar_grounding,
    default_symbols,
    transitive_closure,
)
from repro.semirings import BOOLEAN, COUNTING, TROPICAL

TC = transitive_closure()
COLUMNAR_ENGINE = FixpointEngine("columnar", "columnar")

#: DAG edge universe: u < v over six vertices, so every stream state
#: converges and integer tropical/counting arithmetic stays exact.
VERTICES = 6
EDGE_UNIVERSE = [
    (u, v) for u in range(VERTICES) for v in range(u + 1, VERTICES)
]


def weighted_replay(live):
    return Database.from_edges(live, weights=dict(live))


def plain_replay(live):
    return Database.from_edges(live)


def result_key(result):
    return (result.values, result.iterations, result.converged, result.rule_evaluations)


def nonzero(semiring, values):
    return {f: v for f, v in values.items() if not semiring.is_zero(v)}


class StreamMachine(RuleBasedStateMachine):
    """Random fact streams, crosschecked against recompute each step."""

    def __init__(self):
        super().__init__()
        # Cold start: both maintained fixpoints begin on *empty*
        # databases and must absorb the very first insert.
        self.weighted = Database()
        self.plain = Database()
        self.wfix = MaintainedFixpoint(TC, self.weighted, semirings=(TROPICAL, COUNTING))
        self.pfix = MaintainedFixpoint(TC, self.plain, semirings=(BOOLEAN, COUNTING))
        self.live = {}  # (u, v) → integer weight (as float)

    @rule(
        edge=st.sampled_from(EDGE_UNIVERSE),
        weight=st.integers(min_value=1, max_value=9),
    )
    def insert(self, edge, weight):
        u, v = edge
        fresh = edge not in self.live
        assert self.wfix.insert("E", u, v, weight=float(weight)) is fresh
        assert self.pfix.insert("E", u, v) is fresh
        self.live[edge] = float(weight)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def retract(self, data):
        edge = data.draw(st.sampled_from(sorted(self.live)))
        u, v = edge
        assert self.wfix.retract("E", u, v) == Fact("E", (u, v))
        assert self.pfix.retract(Fact("E", (u, v))) == Fact("E", (u, v))
        del self.live[edge]

    @precondition(lambda self: self.live)
    @rule(data=st.data(), weight=st.integers(min_value=1, max_value=9))
    def reweight(self, data, weight):
        edge = data.draw(st.sampled_from(sorted(self.live)))
        # Routed through the *database*, not the maintainer wrapper:
        # any writer holding the Database handle must be maintained.
        self.weighted.set_weight(Fact("E", edge), float(weight))
        self.live[edge] = float(weight)

    @rule()
    def query_matrix(self):
        """Every grounding-engine × strategy pipeline agrees with the
        maintained state (the derivable set and all three semirings)."""
        wdb, pdb = weighted_replay(self.live), plain_replay(self.live)
        expect_bool = nonzero(BOOLEAN, self.pfix.values(BOOLEAN))
        expect_trop = nonzero(TROPICAL, self.wfix.values(TROPICAL))
        expect_count = nonzero(COUNTING, self.wfix.values(COUNTING))
        for engine in GROUNDING_ENGINES:
            for strategy in FIXPOINT_STRATEGIES:
                pipeline = FixpointEngine(strategy, engine)
                got = pipeline.evaluate(TC, pdb, BOOLEAN)
                assert nonzero(BOOLEAN, got.values) == expect_bool
                got = pipeline.evaluate(TC, wdb, TROPICAL)
                assert nonzero(TROPICAL, got.values) == expect_trop
                got = pipeline.evaluate(TC, wdb, COUNTING)
                assert nonzero(COUNTING, got.values) == expect_count

    @invariant()
    def matches_recompute(self):
        wdb = weighted_replay(self.live)
        for semiring in (TROPICAL, COUNTING):
            fresh = COLUMNAR_ENGINE.evaluate(TC, wdb, semiring)
            assert self.wfix.values(semiring) == fresh.values
            assert result_key(self.wfix.result(semiring)) == result_key(fresh)
        pdb = plain_replay(self.live)
        for semiring in (BOOLEAN, COUNTING):
            fresh = COLUMNAR_ENGINE.evaluate(TC, pdb, semiring)
            assert self.pfix.values(semiring) == fresh.values
            assert result_key(self.pfix.result(semiring)) == result_key(fresh)
        assert self.wfix.rule_keys() == columnar_grounding(TC, wdb).rule_keys()
        assert self.pfix.rule_keys() == columnar_grounding(TC, pdb).rule_keys()


StreamMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=12, deadline=None
)

TestStreamMachine = StreamMachine.TestCase


# -- metamorphic: insert-then-retract leaves no residue --------------------


def dag_database(seed=3, extra=6):
    rng = random.Random(seed)
    edges = [(i, i + 1) for i in range(VERTICES - 1)]
    pool = [e for e in EDGE_UNIVERSE if e not in set(edges)]
    edges += rng.sample(pool, extra)
    return Database.from_edges(
        edges, weights={e: float(rng.randint(1, 9)) for e in edges}
    )


def state_snapshot(fix, semirings):
    """Everything insert-then-retract must restore, bit for bit."""
    facts = sorted(fix.values(semirings[0]), key=repr)
    return {
        "results": {s.name: result_key(fix.result(s)) for s in semirings},
        "values": {s.name: fix.values(s) for s in semirings},
        "rule_keys": fix.rule_keys(),
        "support": {fact: fix.support_count(fact) for fact in facts},
        "symbols": len(default_symbols()),
        "edb": sorted(fix.database.facts(), key=repr),
    }


def assert_indexes_consistent(fix):
    """Pattern-index accounting: committed rows + pending tail must
    cover the relation exactly (no retracted row lingering in a tail)."""
    for predicate in fix.database.predicates():
        relation = fix.store.relation(predicate)
        if relation is None:
            continue
        for positions in [(0,), (1,)]:
            index = relation.index_for(positions)
            assert len(index._rows) + index._tail_rows == len(relation)
            rows = list(index._rows)
            for tail_rows in index._tail.values():
                rows.extend(tail_rows)
            assert sorted(rows) == list(range(len(relation)))


@pytest.mark.parametrize("order", ["reverse", "shuffled"])
def test_insert_then_retract_restores_state(order):
    database = dag_database()
    fix = MaintainedFixpoint(TC, database, semirings=(TROPICAL, COUNTING))
    before = state_snapshot(fix, (TROPICAL, COUNTING))

    rng = random.Random(11)
    batch = [e for e in EDGE_UNIVERSE if Fact("E", e) not in database][:5]
    for u, v in batch:
        fix.insert("E", u, v, weight=float(rng.randint(1, 9)))
    mutated = state_snapshot(fix, (TROPICAL, COUNTING))
    assert mutated["rule_keys"] != before["rule_keys"]

    undo = list(reversed(batch)) if order == "reverse" else rng.sample(batch, len(batch))
    for u, v in undo:
        fix.retract("E", u, v)

    after = state_snapshot(fix, (TROPICAL, COUNTING))
    assert after == before
    assert_indexes_consistent(fix)

    # Both fixpoint pipelines see the restored database identically.
    for strategy in ("seminaive", "columnar"):
        engine = FixpointEngine(strategy, "columnar")
        result = engine.evaluate(TC, database, TROPICAL)
        assert result.values == before["values"]["tropical"]


def test_reinsert_after_retract_is_not_a_duplicate():
    """Retract prunes every ground rule touching the fact, so the same
    insert rediscovers exactly the pruned rules -- support counts and
    rule keys must round-trip through retract → insert too."""
    database = dag_database(seed=5)
    fix = MaintainedFixpoint(TC, database, semirings=(COUNTING,))
    before = state_snapshot(fix, (COUNTING,))
    victim = next(iter(database.facts("E")))
    weight = database.weight(victim)

    fix.retract(victim)
    fix.insert(victim, weight=weight)

    assert state_snapshot(fix, (COUNTING,)) == before
    assert_indexes_consistent(fix)


def test_weight_cycle_restores_state():
    database = dag_database(seed=9)
    fix = MaintainedFixpoint(TC, database, semirings=(TROPICAL,))
    victim = next(iter(database.facts("E")))
    weight = database.weight(victim)
    before = state_snapshot(fix, (TROPICAL,))
    database.set_weight(victim, weight + 5.0)
    assert state_snapshot(fix, (TROPICAL,)) != before
    database.set_weight(victim, weight)
    assert state_snapshot(fix, (TROPICAL,)) == before


# -- targeted edge cases ---------------------------------------------------


def test_cold_start_from_empty_database():
    database = Database()
    fix = MaintainedFixpoint(TC, database, semirings=(BOOLEAN,))
    assert fix.values(BOOLEAN) == {}
    assert fix.insert("E", 0, 1)
    assert fix.insert("E", 1, 2)
    assert fix.values(BOOLEAN) == {
        Fact("T", (0, 1)): True,
        Fact("T", (1, 2)): True,
        Fact("T", (0, 2)): True,
    }
    fix.retract("E", 0, 1)
    assert fix.values(BOOLEAN) == {Fact("T", (1, 2)): True}


def test_divergent_counting_self_heals():
    """On a cycle COUNTING never converges; the maintained state must
    track the batch kernel's *capped* trajectory exactly, which the
    incremental paths cannot do -- they must fall back to a full
    refresh whenever the tracked state is not converged."""
    database = Database.from_edges([(0, 1), (1, 2), (2, 0)])
    fix = MaintainedFixpoint(TC, database, semirings=(COUNTING,))
    assert not fix.is_converged(COUNTING)

    rng = random.Random(2)
    live = {(0, 1), (1, 2), (2, 0)}
    pool = [(u, v) for u in range(4) for v in range(4) if u != v]
    for step in range(30):
        if live and rng.random() < 0.4:
            edge = rng.choice(sorted(live))
            fix.retract("E", *edge)
            live.discard(edge)
        else:
            edge = rng.choice(pool)
            if edge in live:
                continue
            fix.insert("E", *edge)
            live.add(edge)
        fresh = COLUMNAR_ENGINE.evaluate(TC, Database.from_edges(sorted(live)), COUNTING)
        assert fix.values(COUNTING) == fresh.values, step
        assert fix.is_converged(COUNTING) is fresh.converged, step


def test_idb_writes_are_rejected():
    database = Database.from_edges([(0, 1)])
    fix = MaintainedFixpoint(TC, database)
    with pytest.raises(DatalogError):
        fix.insert("T", 0, 1)
    with pytest.raises(DatalogError):
        fix.retract("T", 0, 1)
    with pytest.raises(KeyError):
        fix.retract("E", 5, 6)


def test_listeners_observe_applied_deltas():
    database = Database.from_edges([(0, 1)])
    fix = MaintainedFixpoint(TC, database, semirings=(BOOLEAN,))
    seen = []
    fix.add_listener(lambda kind, fact, weight: seen.append((kind, fact, weight)))
    fix.insert("E", 1, 2, weight=2.0)
    database.set_weight(Fact("E", (1, 2)), 3.0)
    fix.retract("E", 1, 2)
    assert seen == [
        ("insert", Fact("E", (1, 2)), 2.0),
        ("weight", Fact("E", (1, 2)), 3.0),
        ("retract", Fact("E", (1, 2)), None),
    ]


def test_detach_freezes_the_maintained_state():
    database = Database.from_edges([(0, 1), (1, 2)])
    fix = MaintainedFixpoint(TC, database, semirings=(BOOLEAN,))
    frozen = fix.values(BOOLEAN)
    fix.detach()
    database.add("E", 2, 3)
    assert fix.values(BOOLEAN) == frozen
