"""Magic-set specialization (the Theorem 5.8 rewriting)."""

import pytest

from repro.circuits import canonical_polynomial
from repro.constructions import generic_circuit
from repro.datalog import (
    Atom,
    DatalogError,
    Fact,
    Program,
    Rule,
    Variable,
    dyck1,
    magic_specialize,
    magic_specialize_sink,
    naive_evaluation,
    provenance_by_proof_trees,
    relevant_grounding,
    specialized_fact,
    transitive_closure,
)
from repro.semirings import BOOLEAN, TROPICAL
from repro.workloads import random_digraph, random_weights

TC = transitive_closure()
X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def right_linear_tc() -> Program:
    return Program(
        [
            Rule(Atom("T", (X, Y)), [Atom("E", (X, Y))]),
            Rule(Atom("T", (X, Y)), [Atom("E", (X, Z)), Atom("T", (Z, Y))]),
        ]
    )


def test_specialized_program_is_monadic():
    specialized = magic_specialize(TC, 0)
    assert specialized.is_monadic()
    assert specialized.is_linear()
    assert specialized.target == "T@0"


def test_specialization_preserves_boolean_answers():
    db = random_digraph(7, 14, seed=6)
    specialized = magic_specialize(TC, 0)
    original = naive_evaluation(TC, db, BOOLEAN)
    magic = naive_evaluation(specialized, db, BOOLEAN)
    for fact, value in original.values.items():
        if fact.args[0] == 0:
            assert magic.value(Fact("T@0", (fact.args[1],))) == value


def test_specialization_preserves_provenance():
    db = random_digraph(6, 11, seed=9)
    specialized = magic_specialize(TC, 0)
    target = specialized_fact(TC, 0, 5)
    assert provenance_by_proof_trees(specialized, db, target) == (
        provenance_by_proof_trees(TC, db, Fact("T", (0, 5)))
    )


def test_specialization_preserves_tropical_values():
    db = random_digraph(7, 15, seed=2)
    weights = random_weights(db, seed=2)
    specialized = magic_specialize(TC, 0)
    original = naive_evaluation(TC, db, TROPICAL, weights=weights)
    magic = naive_evaluation(specialized, db, TROPICAL, weights=weights)
    for fact, value in original.values.items():
        if fact.args[0] == 0:
            assert magic.value(Fact("T@0", (fact.args[1],))) == value


def test_grounding_shrinks_from_quadratic_to_linear():
    # The point of the rewriting: O(n²) IDB facts become O(n).
    db = random_digraph(10, 25, seed=4)
    full = relevant_grounding(TC, db)
    magic = relevant_grounding(magic_specialize(TC, 0), db)
    assert len(magic.idb_facts) < len(full.idb_facts)
    assert len(magic.rules) < len(full.rules)


def test_specialized_circuit_matches_reference():
    db = random_digraph(6, 12, seed=0)
    specialized = magic_specialize(TC, 0)
    circuit = generic_circuit(specialized, db, specialized_fact(TC, 0, 5))
    assert canonical_polynomial(circuit) == provenance_by_proof_trees(
        TC, db, Fact("T", (0, 5))
    )


def test_sink_specialization_for_right_linear():
    program = right_linear_tc()
    db = random_digraph(6, 12, seed=3)
    specialized = magic_specialize_sink(program, 5)
    assert specialized.is_monadic()
    original = naive_evaluation(program, db, BOOLEAN)
    magic = naive_evaluation(specialized, db, BOOLEAN)
    for fact, value in original.values.items():
        if fact.args[1] == 5:
            assert magic.value(Fact("T@5", (fact.args[0],))) == value


def test_left_linearity_required():
    with pytest.raises(DatalogError):
        magic_specialize(right_linear_tc(), 0)
    with pytest.raises(DatalogError):
        magic_specialize(dyck1(), 0)
    with pytest.raises(DatalogError):
        magic_specialize_sink(TC, 0)
