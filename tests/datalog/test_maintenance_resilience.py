"""Watchdogs and degrade-to-recompute for differential maintenance (§12).

Two layers under test.  :class:`MaintenancePolicy` arms the
*maintainer* with wall-clock/round budgets and a fault-injection tap;
tripping either raises :class:`MaintenanceBudgetExceeded` (or the
injected error) out of the write.  :class:`repro.api.StreamSession`
is the *serving* wrapper that must never surface those: it detaches
the broken maintainer, keeps answering exactly (via full recompute),
reports the write as applied -- the database mutation lands before
maintainer notification, so it is durable -- and re-attaches a fresh
maintainer on the next clean write.
"""

import pytest

from repro.api import MaintenancePolicy, Session
from repro.datalog import (
    Database,
    DatalogError,
    Fact,
    MaintainedFixpoint,
    transitive_closure,
)
from repro.datalog.incremental import MaintenanceBudgetExceeded
from repro.semirings import BOOLEAN, COUNTING
from repro.testing import FaultInjector, InjectedFault, MAINTAINER_CRASH

TC = transitive_closure()
EDGES = [(0, 1), (1, 2), (2, 3)]


def fresh(edges=EDGES):
    return Database.from_edges(edges)


# -- MaintainedFixpoint watchdogs ------------------------------------------


def test_propagate_round_budget_trips():
    policy = MaintenancePolicy(max_propagate_rounds=0)
    fixpoint = MaintainedFixpoint(TC, fresh(), semirings=(BOOLEAN,), policy=policy)
    with pytest.raises(MaintenanceBudgetExceeded) as err:
        fixpoint.insert(Fact("E", (3, 4)))
    assert err.value.site == "propagate.round"


def test_propagate_wall_clock_budget_trips():
    policy = MaintenancePolicy(max_propagate_seconds=0.0)
    fixpoint = MaintainedFixpoint(TC, fresh(), semirings=(BOOLEAN,), policy=policy)
    with pytest.raises(MaintenanceBudgetExceeded) as err:
        fixpoint.insert(Fact("E", (3, 4)))
    assert err.value.site in ("propagate.round", "reground.round")


def test_refresh_wall_clock_budget_trips():
    # Initial tracking goes through _refresh, whose post-kernel tick
    # catches a blown budget before the state serves anything.
    policy = MaintenancePolicy(max_refresh_seconds=0.0)
    with pytest.raises(MaintenanceBudgetExceeded) as err:
        MaintainedFixpoint(TC, fresh(), semirings=(COUNTING,), policy=policy)
    assert err.value.site == "refresh"


def test_fault_hook_crash_propagates_from_the_write():
    injector = FaultInjector(seed=5, rates={MAINTAINER_CRASH: 1.0})
    policy = MaintenancePolicy(fault_hook=injector.maintenance_hook())
    fixpoint = MaintainedFixpoint(TC, fresh(), policy=policy)
    with pytest.raises(InjectedFault):
        fixpoint.insert(Fact("E", (3, 4)))
    assert injector.fired[MAINTAINER_CRASH] >= 1


def test_budgets_off_by_default():
    # The default policy must add no behavior: a plain maintainer and
    # a budgeted-with-None maintainer agree on a nontrivial stream.
    fixpoint = MaintainedFixpoint(TC, fresh(), semirings=(BOOLEAN,), policy=MaintenancePolicy())
    fixpoint.insert(Fact("E", (3, 4)))
    fixpoint.retract(Fact("E", (0, 1)))
    assert fixpoint.value(Fact("T", (1, 4)), BOOLEAN) is True
    assert fixpoint.value(Fact("T", (0, 2)), BOOLEAN) is False


# -- StreamSession degrade-to-recompute ------------------------------------


def crash_times(n):
    """A fault hook that raises on the first *n* ticks, then heals."""
    remaining = {"n": n}

    def hook(site):
        if remaining["n"] > 0:
            remaining["n"] -= 1
            raise InjectedFault(MAINTAINER_CRASH)

    return hook


def expected_closure(session):
    return {
        fact for fact, value in session.solve(BOOLEAN).values.items() if value
    }


def test_stream_degrades_and_keeps_answering_exactly():
    session = Session(TC, fresh())
    stream = session.stream(policy=MaintenancePolicy(fault_hook=crash_times(1)))
    # The first write crashes the maintainer mid-maintenance; the
    # stream degrades instead of surfacing the fault...
    assert stream.insert(Fact("E", (3, 4))) is True
    assert stream.degraded is True
    assert stream.degradations == 1
    assert "InjectedFault" in stream.last_degrade_reason
    # ...and the write is durable: the database took it before the
    # maintainer was notified, and reads (now full recomputes) see it.
    assert stream.value(Fact("T", (0, 4))) is True
    assert stream.values(BOOLEAN) == {f: True for f in expected_closure(session)}


def test_degraded_stream_reattaches_on_next_clean_write():
    session = Session(TC, fresh())
    stream = session.stream(policy=MaintenancePolicy(fault_hook=crash_times(1)))
    stream.insert(Fact("E", (3, 4)))
    assert stream.degraded is True
    # The hook healed: the next write rebuilds a fresh maintainer from
    # current database state and maintenance resumes differentially.
    assert stream.insert(Fact("E", (4, 5))) is True
    assert stream.degraded is False
    assert stream.degradations == 1
    assert stream.fixpoint is not None
    assert stream.value(Fact("T", (0, 5))) is True


def test_stream_stays_degraded_while_faults_persist():
    session = Session(TC, fresh())
    stream = session.stream(BOOLEAN, policy=MaintenancePolicy(fault_hook=crash_times(1000)))
    stream.insert(Fact("E", (3, 4)))
    stream.insert(Fact("E", (4, 5)))
    retracted = stream.retract(Fact("E", (0, 1)))
    assert retracted == Fact("E", (0, 1))
    assert stream.degraded is True
    assert stream.degradations >= 2
    # Every answer is still exactly the recompute answer.
    assert stream.value(Fact("T", (1, 5))) is True
    assert stream.value(Fact("T", (0, 2))) is False
    closure = expected_closure(session)
    assert stream.values(BOOLEAN) == {f: True for f in closure}


def test_budget_trip_degrades_instead_of_raising():
    session = Session(TC, fresh())
    stream = session.stream(BOOLEAN, policy=MaintenancePolicy(max_propagate_rounds=0))
    assert stream.insert(Fact("E", (3, 4))) is True
    assert stream.degraded is True
    assert "MaintenanceBudgetExceeded" in stream.last_degrade_reason
    assert stream.value(Fact("T", (0, 4))) is True


def test_caller_errors_are_not_degrade_triggers():
    session = Session(TC, fresh())
    stream = session.stream(policy=MaintenancePolicy(fault_hook=crash_times(1)))
    # IDB writes are rejected up front, degraded or not...
    with pytest.raises(DatalogError):
        stream.insert(Fact("T", (0, 3)))
    assert stream.degradations == 0
    stream.insert(Fact("E", (3, 4)))  # now degraded
    with pytest.raises(DatalogError):
        stream.insert(Fact("T", (0, 4)))
    # ...and retracting an absent fact is a KeyError either way.
    with pytest.raises(KeyError):
        stream.retract(Fact("E", (7, 8)))
    assert stream.degradations == 1


def test_served_circuits_survive_a_degrade():
    session = Session(TC, fresh())
    stream = session.stream(policy=MaintenancePolicy(fault_hook=crash_times(1)))
    served = stream.serve(Fact("T", (0, 3)), BOOLEAN)
    assert served.value() is True
    stream.insert(Fact("E", (3, 4)))  # degrades
    assert stream.degraded is True
    # The served evaluator was rebuilt from post-write state and keeps
    # answering; a subsequent degraded-path retract flows into it too.
    assert served.value() is True
    stream.retract(Fact("E", (2, 3)))
    assert served.value() is False
