"""The Datalog surface-syntax parser."""

import pytest

from repro.datalog import Constant, ParseError, Variable, parse_atom, parse_program, parse_rule


def test_parse_tc():
    program = parse_program(
        """
        T(X, Y) :- E(X, Y).
        T(X, Y) :- T(X, Z), E(Z, Y).
        """
    )
    assert program.target == "T"
    assert program.is_basic_chain()
    assert len(program.rules) == 2


def test_parse_atom_terms():
    atom = parse_atom("R(X, abc, 42, 'hello world')")
    assert atom.terms == (
        Variable("X"),
        Constant("abc"),
        Constant(42),
        Constant("hello world"),
    )


def test_variables_start_uppercase_or_underscore():
    atom = parse_atom("R(Xvar, _anon, lower)")
    assert isinstance(atom.terms[0], Variable)
    assert isinstance(atom.terms[1], Variable)
    assert isinstance(atom.terms[2], Constant)


def test_negative_numbers():
    atom = parse_atom("R(-5)")
    assert atom.terms == (Constant(-5),)


def test_comments_and_whitespace():
    program = parse_program(
        """
        % transitive closure
        T(X, Y) :- E(X, Y).   # init
        T(X, Y) :- T(X, Z), E(Z, Y).
        """
    )
    assert len(program.rules) == 2


def test_double_quoted_strings():
    atom = parse_atom('R("a b")')
    assert atom.terms == (Constant("a b"),)


def test_explicit_target():
    program = parse_program(
        """
        A(X) :- B(X).
        B(X) :- R(X).
        """,
        target="B",
    )
    assert program.target == "B"


def test_missing_dot_fails():
    with pytest.raises(ParseError):
        parse_rule("T(X, Y) :- E(X, Y)")


def test_missing_implies_fails():
    with pytest.raises(ParseError):
        parse_rule("T(X, Y) E(X, Y).")


def test_unbalanced_parens_fail():
    with pytest.raises(ParseError):
        parse_atom("R(X")


def test_unexpected_character_fails():
    with pytest.raises(ParseError):
        parse_program("T(X) :- E(X) & F(X).")


def test_empty_program_fails():
    with pytest.raises(ParseError):
        parse_program("   % nothing here\n")


def test_trailing_garbage_fails():
    with pytest.raises(ParseError):
        parse_atom("R(X) extra")
    with pytest.raises(ParseError):
        parse_rule("T(X) :- E(X). extra")


def test_parsed_program_equals_library_program():
    from repro.datalog import transitive_closure

    parsed = parse_program(
        "T(X, Y) :- E(X, Y).\nT(X, Y) :- T(X, Z), E(Z, Y)."
    )
    assert parsed.rules == transitive_closure().rules


def test_parse_rule_with_constants_in_head_is_safe_check():
    rule = parse_rule("Good(X) :- R(X, done).")
    assert rule.is_safe()


def test_rule_repr_round_trips_through_parser():
    # repr prints conjunction as ∧; the serving wire format relies on
    # rule text surviving repr → parse → repr unchanged.
    from repro.datalog import dyck1, transitive_closure

    for program in (transitive_closure(), dyck1()):
        text = "\n".join(repr(rule) + "." for rule in program.rules)
        assert parse_program(text, target=program.target).rules == program.rules
