"""The Datalog surface-syntax parser."""

import pytest

from repro.datalog import Constant, ParseError, Variable, parse_atom, parse_program, parse_rule


def test_parse_tc():
    program = parse_program(
        """
        T(X, Y) :- E(X, Y).
        T(X, Y) :- T(X, Z), E(Z, Y).
        """
    )
    assert program.target == "T"
    assert program.is_basic_chain()
    assert len(program.rules) == 2


def test_parse_atom_terms():
    atom = parse_atom("R(X, abc, 42, 'hello world')")
    assert atom.terms == (
        Variable("X"),
        Constant("abc"),
        Constant(42),
        Constant("hello world"),
    )


def test_variables_start_uppercase_or_underscore():
    atom = parse_atom("R(Xvar, _anon, lower)")
    assert isinstance(atom.terms[0], Variable)
    assert isinstance(atom.terms[1], Variable)
    assert isinstance(atom.terms[2], Constant)


def test_negative_numbers():
    atom = parse_atom("R(-5)")
    assert atom.terms == (Constant(-5),)


def test_comments_and_whitespace():
    program = parse_program(
        """
        % transitive closure
        T(X, Y) :- E(X, Y).   # init
        T(X, Y) :- T(X, Z), E(Z, Y).
        """
    )
    assert len(program.rules) == 2


def test_double_quoted_strings():
    atom = parse_atom('R("a b")')
    assert atom.terms == (Constant("a b"),)


def test_explicit_target():
    program = parse_program(
        """
        A(X) :- B(X).
        B(X) :- R(X).
        """,
        target="B",
    )
    assert program.target == "B"


def test_missing_dot_fails():
    with pytest.raises(ParseError):
        parse_rule("T(X, Y) :- E(X, Y)")


def test_missing_implies_fails():
    with pytest.raises(ParseError):
        parse_rule("T(X, Y) E(X, Y).")


def test_unbalanced_parens_fail():
    with pytest.raises(ParseError):
        parse_atom("R(X")


def test_unexpected_character_fails():
    with pytest.raises(ParseError):
        parse_program("T(X) :- E(X) & F(X).")


def test_empty_program_fails():
    with pytest.raises(ParseError):
        parse_program("   % nothing here\n")


def test_trailing_garbage_fails():
    with pytest.raises(ParseError):
        parse_atom("R(X) extra")
    with pytest.raises(ParseError):
        parse_rule("T(X) :- E(X). extra")


def test_parsed_program_equals_library_program():
    from repro.datalog import transitive_closure

    parsed = parse_program(
        "T(X, Y) :- E(X, Y).\nT(X, Y) :- T(X, Z), E(Z, Y)."
    )
    assert parsed.rules == transitive_closure().rules


def test_parse_rule_with_constants_in_head_is_safe_check():
    rule = parse_rule("Good(X) :- R(X, done).")
    assert rule.is_safe()


def test_rule_repr_round_trips_through_parser():
    # repr prints conjunction as ∧; the serving wire format relies on
    # rule text surviving repr → parse → repr unchanged.
    from repro.datalog import dyck1, transitive_closure

    for program in (transitive_closure(), dyck1()):
        text = "\n".join(repr(rule) + "." for rule in program.rules)
        assert parse_program(text, target=program.target).rules == program.rules


# -- positions: ParseError line/column and parsed spans --------------------


def test_parse_error_carries_position_and_source_line():
    text = "T(X, Y) :- E(X, Y).\nT(X, Y) :- T(X, Z) E(Z, Y)."
    with pytest.raises(ParseError) as excinfo:
        parse_program(text)
    error = excinfo.value
    assert error.line == 2
    assert error.source_line == "T(X, Y) :- T(X, Z) E(Z, Y)."
    # The column points at the unexpected `E` (1-based).
    assert error.source_line[error.column - 1] == "E"
    assert "line 2" in str(error)


def test_parse_error_position_on_first_line():
    with pytest.raises(ParseError) as excinfo:
        parse_atom("R(X,")
    assert excinfo.value.line == 1
    assert excinfo.value.column >= 1


def test_rules_and_atoms_carry_source_spans():
    text = "% comment\nT(X, Y) :- E(X, Y).\n\nT(X, Y) :- T(X, Z), E(Z, Y).\n"
    program = parse_program(text)
    first, second = program.rules
    assert first.span is not None and first.span.line == 2
    assert second.span.line == 4
    assert first.span.source == "T(X, Y) :- E(X, Y)."
    # Atom spans point inside their rule's line.
    body_atom = second.body[1]
    assert body_atom.span.line == 4
    assert text.splitlines()[3][body_atom.span.column - 1 :].startswith("E(Z, Y)")


def test_ast_built_programs_have_no_spans():
    from repro.datalog import transitive_closure

    for rule in transitive_closure().rules:
        assert rule.span is None
        assert rule.head.span is None


def test_spans_are_excluded_from_equality():
    parsed = parse_program("T(X, Y) :- E(X, Y).\nT(X, Y) :- T(X, Z), E(Z, Y).")
    from repro.datalog import transitive_closure

    library = transitive_closure()
    assert parsed.rules == library.rules
    assert hash(parsed.rules[0]) == hash(library.rules[0])
