"""Proof trees, tightness (Prop 2.4) and tree-based provenance."""

from repro.datalog import (
    Database,
    Fact,
    count_tight_proof_trees,
    dyck1,
    enumerate_proof_trees,
    enumerate_tight_proof_trees,
    max_tight_fringe,
    provenance_by_proof_trees,
    relevant_grounding,
    transitive_closure,
)
from repro.semirings import Polynomial, TROPICAL


def tc_ground(db):
    return relevant_grounding(transitive_closure(), db)


def test_path_has_single_tight_tree():
    db = Database.from_edges([(0, 1), (1, 2), (2, 3)])
    ground = tc_ground(db)
    trees = list(enumerate_tight_proof_trees(ground, Fact("T", (0, 3))))
    assert len(trees) == 1
    tree = trees[0]
    assert sorted(map(repr, tree.leaves())) == ["E(0,1)", "E(1,2)", "E(2,3)"]
    assert tree.is_tight()
    assert tree.fringe_size == 3
    assert tree.height() == 3


def test_diamond_has_two_tight_trees():
    db = Database.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    ground = tc_ground(db)
    trees = list(enumerate_tight_proof_trees(ground, Fact("T", (0, 3))))
    assert len(trees) == 2


def test_cycle_trees_are_finite_and_tight():
    db = Database.from_edges([(0, 1), (1, 0), (0, 2)])
    ground = tc_ground(db)
    trees = list(enumerate_tight_proof_trees(ground, Fact("T", (0, 2))))
    assert all(t.is_tight() for t in trees)
    # 0→2 directly, or 0→1→0→2 would repeat T(0,2)? No: tight trees for
    # T(0,2): direct edge, and via T(0,1),T(0,0)... enumerate and check
    # every monomial corresponds to a walk ending at 2.
    assert len(trees) >= 1
    for tree in trees:
        leaves = tree.leaves()
        assert leaves[-1].predicate == "E"


def test_non_tight_trees_exist_beyond_tight_ones():
    db = Database.from_edges([(0, 1), (1, 0), (0, 2)])
    ground = tc_ground(db)
    tight = list(enumerate_tight_proof_trees(ground, Fact("T", (0, 2))))
    all_trees = list(enumerate_proof_trees(ground, Fact("T", (0, 2)), max_height=8))
    assert len(all_trees) > len(tight)
    assert any(not t.is_tight() for t in all_trees)


def test_absorption_makes_tight_trees_sufficient():
    # Prop 2.4: summing monomials over ALL trees (up to a height) equals
    # summing over tight trees only, over an absorptive semiring.
    db = Database.from_edges([(0, 1), (1, 0), (0, 2)])
    ground = tc_ground(db)
    fact = Fact("T", (0, 2))
    tight_poly = Polynomial(
        t.monomial() for t in enumerate_tight_proof_trees(ground, fact)
    )
    deep_poly = Polynomial(
        t.monomial() for t in enumerate_proof_trees(ground, fact, max_height=8)
    )
    assert tight_poly == deep_poly


def test_figure1_has_three_tight_trees(figure1_db, figure1_fact, tc_program):
    ground = relevant_grounding(tc_program, figure1_db)
    assert count_tight_proof_trees(ground, figure1_fact) == 3


def test_provenance_polynomial_matches_naive_evaluation():
    from repro.datalog import naive_evaluation
    from repro.workloads import random_digraph, random_weights

    db = random_digraph(7, 12, seed=5)
    weights = random_weights(db, seed=5)
    fact = Fact("T", (0, 6))
    poly = provenance_by_proof_trees(transitive_closure(), db, fact)
    direct = naive_evaluation(transitive_closure(), db, TROPICAL, weights=weights).value(fact)
    assert poly.evaluate(TROPICAL, weights) == direct


def test_dyck_proof_trees_are_nonlinear():
    edges = [(0, "L", 1), (1, "R", 2), (2, "L", 3), (3, "R", 4)]
    db = Database.from_labeled_edges(edges)
    ground = relevant_grounding(dyck1(), db)
    trees = list(enumerate_tight_proof_trees(ground, Fact("S", (0, 4))))
    assert len(trees) == 1  # concatenation rule: S(0,2) S(2,4)
    tree = trees[0]
    assert tree.fringe_size == 4
    assert len(tree.rule.idb_body) == 2  # the non-linear rule


def test_monomial_has_multiplicities():
    # S(0,1) :- L(0,1) ∧ S(1,1) ∧ R(1,1) with S(1,1) :- L(1,1) ∧ R(1,1):
    # a tight tree using R(1,1) twice, so its monomial has exponent 2.
    db = Database.from_labeled_edges([(0, "L", 1), (1, "L", 1), (1, "R", 1)])
    ground = relevant_grounding(dyck1(), db)
    trees = list(enumerate_tight_proof_trees(ground, Fact("S", (0, 1))))
    assert trees
    exponents = [max(e for _v, e in t.monomial().items) for t in trees]
    assert max(exponents) >= 2


def test_max_tight_fringe_probe():
    db = Database.from_edges([(i, i + 1) for i in range(5)])
    ground = tc_ground(db)
    assert max_tight_fringe(ground, Fact("T", (0, 5))) == 5


def test_tree_limit_respected():
    db = Database.from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
    ground = tc_ground(db)
    limited = list(enumerate_tight_proof_trees(ground, Fact("T", (0, 4)), limit=1))
    assert len(limited) == 1


def test_pretty_rendering():
    db = Database.from_edges([(0, 1), (1, 2)])
    ground = tc_ground(db)
    tree = next(enumerate_tight_proof_trees(ground, Fact("T", (0, 2))))
    text = tree.pretty()
    assert "T(0,2)" in text and "[EDB]" in text
