"""Semi-naive / naive equivalence and the FixpointEngine API.

The semi-naive strategy is Jacobi-ordered (round ``t`` reads round
``t − 1`` values), so it must reproduce the naive strategy *exactly*:
same value map, same iteration count, same ``converged`` flag, same
divergence behaviour on non-stable semirings -- while performing
strictly fewer rule evaluations whenever convergence is non-uniform.
"""

import pytest

from repro.circuits import crosscheck_fixpoint
from repro.constructions import generic_circuit
from repro.datalog import (
    DEFAULT_STRATEGY,
    Database,
    DivergenceError,
    Fact,
    FixpointEngine,
    dyck1,
    naive_evaluation,
    relevant_grounding,
    seminaive_evaluation,
    transitive_closure,
)
from repro.semirings import BOOLEAN, COUNTING, SORP, TROPICAL, CappedCountingSemiring
from repro.workloads import cycle_graph, dyck_concatenated_path, random_digraph, random_weights

TC = transitive_closure()


def figure1_graph() -> Database:
    return Database.from_edges(
        [
            ("s", "u1"),
            ("s", "u2"),
            ("u1", "v1"),
            ("u1", "v2"),
            ("u2", "v2"),
            ("v1", "t"),
            ("v2", "t"),
        ]
    )


GRAPHS = {
    "figure1": figure1_graph,
    "cycle": lambda: cycle_graph(6),
    "random": lambda: random_digraph(10, 25, seed=5),
}


def weights_for(semiring, database):
    """A non-trivial EDB valuation per semiring (None = all-one)."""
    if semiring is TROPICAL:
        return random_weights(database, seed=11)
    if semiring is SORP:
        return {fact: SORP.var(fact) for fact in database.facts()}
    return None


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize(
    "semiring",
    [BOOLEAN, TROPICAL, CappedCountingSemiring(32), SORP],
    ids=lambda s: s.name,
)
def test_seminaive_matches_naive_fixpoint(semiring, graph_name):
    database = GRAPHS[graph_name]()
    weights = weights_for(semiring, database)
    # The default cap suits absorptive semirings; capped counting is
    # q-stable and needs ~q rounds to saturate on cycles.
    max_iterations = 400 if isinstance(semiring, CappedCountingSemiring) else None
    naive = naive_evaluation(
        TC, database, semiring, weights=weights, strategy="naive", max_iterations=max_iterations
    )
    semi = naive_evaluation(
        TC, database, semiring, weights=weights, strategy="seminaive", max_iterations=max_iterations
    )
    assert naive.converged and semi.converged
    assert naive.iterations == semi.iterations
    assert set(naive.values) == set(semi.values)
    for fact, value in naive.values.items():
        assert semiring.eq(value, semi.values[fact]), fact
    assert naive.strategy == "naive" and semi.strategy == "seminaive"


def test_seminaive_is_the_default_strategy():
    assert DEFAULT_STRATEGY == "seminaive"
    database = figure1_graph()
    result = naive_evaluation(TC, database, BOOLEAN)
    assert result.strategy == "seminaive"
    explicit = seminaive_evaluation(TC, database, BOOLEAN)
    assert explicit.values == result.values


def test_seminaive_dyck1_matches_naive():
    program = dyck1()
    database = Database.from_labeled_edges(dyck_concatenated_path(3))
    naive = naive_evaluation(program, database, BOOLEAN, strategy="naive")
    semi = naive_evaluation(program, database, BOOLEAN, strategy="seminaive")
    assert naive.values == semi.values
    assert naive.iterations == semi.iterations


def test_seminaive_does_strictly_less_work_on_deep_graphs():
    database = random_digraph(24, 72, seed=24)
    ground = relevant_grounding(TC, database)
    naive = naive_evaluation(TC, database, BOOLEAN, ground=ground, strategy="naive")
    semi = naive_evaluation(TC, database, BOOLEAN, ground=ground, strategy="seminaive")
    assert naive.iterations >= 3  # non-trivial depth, else the ratio is vacuous
    assert semi.rule_evaluations * 2 <= naive.rule_evaluations


@pytest.mark.parametrize("strategy", ["naive", "seminaive"])
def test_divergence_reported_identically(strategy):
    database = Database.from_edges([(0, 1), (1, 0), (0, 2)])
    result = naive_evaluation(
        TC, database, COUNTING, max_iterations=25, strategy=strategy
    )
    assert not result.converged
    assert result.iterations == 25


@pytest.mark.parametrize("strategy", ["naive", "seminaive"])
def test_divergence_raises_identically(strategy):
    database = Database.from_edges([(0, 1), (1, 0)])
    with pytest.raises(DivergenceError):
        naive_evaluation(
            TC,
            database,
            COUNTING,
            max_iterations=10,
            raise_on_divergence=True,
            strategy=strategy,
        )


def test_diverging_value_maps_agree_round_for_round():
    database = Database.from_edges([(0, 1), (1, 0), (0, 2)])
    for rounds in (1, 2, 7, 20):
        naive = naive_evaluation(
            TC, database, COUNTING, max_iterations=rounds, strategy="naive"
        )
        semi = naive_evaluation(
            TC, database, COUNTING, max_iterations=rounds, strategy="seminaive"
        )
        assert naive.values == semi.values, rounds


def test_capped_counting_converges_on_cycle():
    semiring = CappedCountingSemiring(8)
    database = Database.from_edges([(0, 1), (1, 0), (0, 2)])
    naive = naive_evaluation(TC, database, semiring, strategy="naive", max_iterations=100)
    semi = naive_evaluation(TC, database, semiring, strategy="seminaive", max_iterations=100)
    assert naive.converged and semi.converged
    assert naive.values == semi.values
    # Cyclic derivations saturate at the cap.
    assert semi.values[Fact("T", (0, 0))] == 8


def test_fixpoint_engine_rejects_unknown_strategy():
    with pytest.raises(ValueError):
        FixpointEngine("gauss-seidel")


def test_fixpoint_engine_none_resolves_to_default():
    assert FixpointEngine(None).strategy == DEFAULT_STRATEGY


def test_engine_boolean_iterations_matches_module_probe():
    from repro.datalog import boolean_iterations

    database = GRAPHS["random"]()
    for strategy in ("naive", "seminaive"):
        assert FixpointEngine(strategy).boolean_iterations(TC, database) == (
            boolean_iterations(TC, database)
        )


def test_grounding_body_index_is_consistent():
    ground = relevant_grounding(TC, GRAPHS["random"]())
    by_body = ground.rules_by_idb_body
    for fact, positions in by_body.items():
        for position in positions:
            assert fact in ground.rules[position].idb_body
    for position, rule in enumerate(ground.rules):
        for fact in rule.idb_body:
            assert position in by_body[fact]
        assert position in ground.rule_indices_by_head[rule.head]


@pytest.mark.parametrize("strategy", ["naive", "seminaive"])
def test_circuit_crosschecks_against_engine(strategy):
    database = figure1_graph()
    weights = random_weights(database, seed=3)
    facts = [Fact("T", ("s", "t")), Fact("T", ("s", "v2"))]
    circuit = generic_circuit(TC, database, facts)
    mismatches = crosscheck_fixpoint(
        circuit, facts, TC, database, TROPICAL, weights=weights, strategy=strategy
    )
    assert mismatches == {}
