"""CFGs: cleaning, finiteness (Prop 5.5's test), pumping, membership."""

import pytest

from repro.grammars import CFG, GrammarError, Production, pumping_decomposition


def anbn():
    return CFG.from_rules("S -> a S b | a b", start="S")


def dyck():
    return CFG.from_rules("S -> l r | l S r | S S", start="S")


def test_from_rules_classifies_symbols():
    g = anbn()
    assert g.nonterminals == {"S"}
    assert g.terminals == {"a", "b"}
    assert len(g.productions) == 2


def test_validation_rejects_unknown_symbols():
    with pytest.raises(GrammarError):
        CFG({"S"}, {"a"}, [("S", ("a", "X"))], "S")
    with pytest.raises(GrammarError):
        CFG({"S"}, {"a"}, [("T", ("a",))], "S")
    with pytest.raises(GrammarError):
        CFG({"S"}, {"S"}, [], "S")  # overlap
    with pytest.raises(GrammarError):
        CFG({"S"}, {"a"}, [], "T")  # bad start


def test_generating_and_reachable():
    g = CFG.from_rules(
        """
        S -> a | B c
        B -> B c
        D -> a
        """,
        start="S",
    )
    generating = g.generating_symbols()
    assert "S" in generating and "D" in generating
    assert "B" not in generating  # B never terminates
    reachable = g.reachable_symbols()
    assert "D" not in reachable


def test_trim_preserves_words():
    g = CFG.from_rules(
        """
        S -> a | B c
        B -> B c
        D -> a
        """,
        start="S",
    )
    trimmed = g.trim()
    assert trimmed.generate_words(3) == g.generate_words(3)
    assert "B" not in trimmed.nonterminals
    assert "D" not in trimmed.nonterminals


def test_is_empty():
    g = CFG.from_rules("S -> S a", start="S")
    assert g.is_empty()
    assert not anbn().is_empty()


def test_nullable_and_epsilon_removal():
    g = CFG.from_rules("S -> a S | eps", start="S")
    assert "S" in g.nullable_nonterminals()
    cleaned = g.remove_epsilon()
    words = cleaned.generate_words(3)
    # ε removed; a, aa, aaa kept
    assert ("a",) in words and ("a", "a") in words
    assert () not in words


def test_unit_removal_preserves_language():
    g = CFG.from_rules(
        """
        S -> A
        A -> B | a
        B -> b
        """,
        start="S",
    )
    cleaned = g.remove_units()
    assert cleaned.generate_words(2) == {("a",), ("b",)}
    for production in cleaned.productions:
        assert not (
            len(production.rhs) == 1 and production.rhs[0] in cleaned.nonterminals
        )


def test_finiteness_decision():
    assert not anbn().is_finite()
    assert not dyck().is_finite()
    assert CFG.from_rules("S -> a b | a c", start="S").is_finite()
    assert CFG.from_rules("S -> A A\nA -> a | b", start="S").is_finite()


def test_finiteness_ignores_useless_cycles():
    # The B-cycle never generates; the language {a} is finite.
    g = CFG.from_rules(
        """
        S -> a | B
        B -> B b
        """,
        start="S",
    )
    assert g.is_finite()


def test_finiteness_epsilon_cycle_trap():
    # A → A via unit/ε combinations must not count as pumping.
    g = CFG.from_rules(
        """
        S -> A a
        A -> A | eps
        """,
        start="S",
    )
    assert g.is_finite()
    assert g.generate_words(2) == {("a",)}


def test_generate_words_matches_membership():
    g = dyck()
    words = g.generate_words(4)
    assert ("l", "r") in words
    assert ("l", "l", "r", "r") in words
    assert ("l", "r", "l", "r") in words
    for word in words:
        assert g.accepts(word), word
    assert not g.accepts(("l",))
    assert not g.accepts(("r", "l"))


def test_cnf_membership_against_generation():
    g = anbn()
    for n in range(1, 4):
        assert g.accepts(("a",) * n + ("b",) * n)
        assert not g.accepts(("a",) * n + ("b",) * (n + 1))


def test_accepts_epsilon_only_when_nullable():
    g = CFG.from_rules("S -> a S | eps", start="S")
    assert g.accepts(())
    assert not anbn().accepts(())


def test_binarized_bodies_are_short():
    g = CFG.from_rules("S -> a b c d e", start="S")
    binary = g.binarized()
    assert all(len(p.rhs) <= 2 for p in binary.productions)
    assert binary.generate_words(5) == g.generate_words(5)


def test_pumping_decomposition_validity():
    for grammar in (anbn(), dyck()):
        decomposition = pumping_decomposition(grammar)
        assert decomposition is not None
        assert len(decomposition.v) + len(decomposition.x) >= 1
        for i in range(4):
            assert grammar.accepts(decomposition.pumped(i)), (grammar, i)


def test_pumping_none_for_finite():
    assert pumping_decomposition(CFG.from_rules("S -> a b", start="S")) is None


def test_shortest_terminal_words():
    g = dyck()
    shortest = g.shortest_terminal_words()
    assert shortest["S"] == ("l", "r")


def test_production_repr():
    assert "ε" in repr(Production("S", ()))
    assert "S → a b" == repr(Production("S", ("a", "b")))
