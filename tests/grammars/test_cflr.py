"""Weighted CFL-reachability (Definition 5.1)."""


import pytest

from repro.datalog import Fact
from repro.grammars import CFG, cfl_reachability, cfl_reachable_pairs
from repro.semirings import BOOLEAN, TROPICAL


def dyck():
    return CFG.from_rules("S -> l r | l S r | S S", start="S")


def brute_force_pairs(grammar, edges, max_len=8):
    """All (u,v) connected by a path (≤ max_len edges) spelling a word
    in L: exhaustive DFS over simple-ish walks."""
    out_edges = {}
    for u, a, v in edges:
        out_edges.setdefault(u, []).append((a, v))
    pairs = set()
    vertices = {u for u, _, _ in edges} | {v for _, _, v in edges}

    def walk(u, current, word):
        if len(word) > max_len:
            return
        if word and grammar.accepts(tuple(word)):
            pairs.add((u, current))
        for a, v in out_edges.get(current, ()):
            walk(u, v, word + [a])

    for u in sorted(vertices, key=repr):
        walk(u, u, [])
    return frozenset(pairs)


def test_dyck_on_nested_path():
    edges = [(0, "l", 1), (1, "l", 2), (2, "r", 3), (3, "r", 4)]
    assert cfl_reachable_pairs(dyck(), edges) == {(1, 3), (0, 4)}


def test_dyck_matches_brute_force_on_random_graphs():
    import random

    for seed in range(4):
        rng = random.Random(seed)
        vertices = range(5)
        edges = []
        for _ in range(8):
            u, v = rng.sample(list(vertices), 2)
            edges.append((u, rng.choice("lr"), v))
        edges = list(dict.fromkeys(edges))
        got = cfl_reachable_pairs(dyck(), edges)
        expected = brute_force_pairs(dyck(), edges, max_len=6)
        # brute force may miss longer witnesses: expected ⊆ got; and
        # everything in got up to the cap must be found by brute force.
        assert expected <= got, (seed, expected - got)


def test_weighted_dyck_tropical():
    edges = [(0, "l", 1), (1, "r", 2), (2, "l", 3), (3, "r", 4)]
    weights = {
        Fact("l", (0, 1)): 1.0,
        Fact("r", (1, 2)): 2.0,
        Fact("l", (2, 3)): 3.0,
        Fact("r", (3, 4)): 4.0,
    }
    values = cfl_reachability(dyck(), edges, TROPICAL, weights=weights)
    assert values[(0, 2)] == 3.0
    assert values[(2, 4)] == 7.0
    assert values[(0, 4)] == 10.0  # concatenation S S


def test_anbn_language_filter():
    g = CFG.from_rules("S -> a S b | a b", start="S")
    edges = [(0, "a", 1), (1, "a", 2), (2, "b", 3), (3, "b", 4), (4, "b", 5)]
    pairs = cfl_reachable_pairs(g, edges)
    assert (1, 3) in pairs  # ab
    assert (0, 4) in pairs  # aabb
    assert (0, 5) not in pairs  # aabbb unbalanced


def test_epsilon_language_rejected():
    g = CFG.from_rules("S -> a S | eps", start="S")
    with pytest.raises(ValueError):
        cfl_reachability(g, [(0, "a", 1)], BOOLEAN)


def test_database_input_accepted():
    from repro.datalog import Database

    db = Database.from_labeled_edges([(0, "l", 1), (1, "r", 2)])
    assert cfl_reachable_pairs(dyck(), db) == frozenset({(0, 2)})
