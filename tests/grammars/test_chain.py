"""Chain Datalog ⟷ grammars (Proposition 5.2)."""

import pytest

from repro.datalog import DatalogError, dyck1, reachability, transitive_closure
from repro.grammars import (
    CFG,
    GrammarError,
    cfg_to_chain_program,
    chain_program_to_cfg,
    dfa_to_chain_program,
    parse_regex,
    rpq_program,
)


def test_tc_corresponds_to_its_grammar():
    grammar = chain_program_to_cfg(transitive_closure())
    assert grammar.start == "T"
    assert grammar.terminals == {"E"}
    # T ← TE | E: the grammar of Section 5's example.
    rhss = {p.rhs for p in grammar.productions}
    assert rhss == {("E",), ("T", "E")}
    assert not grammar.is_finite()


def test_dyck_grammar_roundtrip():
    grammar = chain_program_to_cfg(dyck1())
    assert grammar.generate_words(4) >= {("L", "R"), ("L", "L", "R", "R"), ("L", "R", "L", "R")}
    program = cfg_to_chain_program(grammar)
    grammar_again = chain_program_to_cfg(program)
    assert grammar_again.generate_words(4) == grammar.generate_words(4)


def test_non_chain_program_rejected():
    with pytest.raises(DatalogError):
        chain_program_to_cfg(reachability())


def test_epsilon_production_rejected():
    g = CFG.from_rules("S -> a S | eps", start="S")
    with pytest.raises(GrammarError):
        cfg_to_chain_program(g)
    # after ε-removal it works
    program = cfg_to_chain_program(g.remove_epsilon())
    assert program.is_basic_chain()


def test_cfg_to_chain_program_shape():
    g = CFG.from_rules("S -> a S b | a b", start="S")
    program = cfg_to_chain_program(g)
    assert program.is_basic_chain()
    assert program.target == "S"
    assert program.edb_predicates == {"a", "b"}


def test_dfa_to_chain_program_language():
    from repro.datalog import Database, naive_evaluation, Fact
    from repro.semirings import BOOLEAN
    from repro.workloads import word_path

    dfa = parse_regex("ab*c").to_dfa()
    program, accepts_epsilon = dfa_to_chain_program(dfa)
    assert not accepts_epsilon
    assert program.is_basic_chain()
    assert program.is_left_linear_chain() or program.is_right_linear_chain()

    # Cross-check: the program derives S(0, k) on a word path iff the
    # DFA accepts the word.
    for word in ["ac", "abc", "abbc", "ab", "bc", "abcb"]:
        db = Database.from_labeled_edges(word_path(word))
        result = naive_evaluation(program, db, BOOLEAN)
        derived = result.value(Fact("S", (0, len(word))))
        assert derived == dfa.accepts_word(tuple(word)), word


def test_rpq_program_from_string_and_regex():
    program, eps = rpq_program("a*")
    assert eps  # ε ∈ a*
    assert program.is_basic_chain()
    from repro.grammars import SymbolRegex

    program2, eps2 = rpq_program(SymbolRegex("a").plus())
    assert not eps2


def test_rpq_program_rejects_epsilon_only():
    from repro.grammars import EpsilonRegex

    with pytest.raises(GrammarError):
        rpq_program(EpsilonRegex())


def test_rpq_program_bad_type():
    with pytest.raises(TypeError):
        rpq_program(42)
