"""Hypothesis properties for the grammar/automata substrate."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammars import (
    CFG,
    ConcatRegex,
    Regex,
    StarRegex,
    SymbolRegex,
    UnionRegex,
    pumping_decomposition,
    regular_pumping_witness,
)

ALPHABET = "ab"


def random_regex(rng: random.Random, depth: int) -> Regex:
    if depth <= 0:
        return SymbolRegex(rng.choice(ALPHABET))
    kind = rng.randrange(4)
    if kind == 0:
        return SymbolRegex(rng.choice(ALPHABET))
    if kind == 1:
        return ConcatRegex(random_regex(rng, depth - 1), random_regex(rng, depth - 1))
    if kind == 2:
        return UnionRegex(random_regex(rng, depth - 1), random_regex(rng, depth - 1))
    return StarRegex(random_regex(rng, depth - 1))


def words_up_to(max_len: int):
    for length in range(max_len + 1):
        yield from itertools.product(ALPHABET, repeat=length)


@given(seed=st.integers(0, 10_000), depth=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_nfa_and_minimized_dfa_agree(seed, depth):
    regex = random_regex(random.Random(seed), depth)
    nfa = regex.to_nfa()
    dfa = regex.to_dfa()  # subset construction + minimization
    for word in words_up_to(4):
        assert nfa.accepts_word(word) == dfa.accepts_word(word), (regex, word)


@given(seed=st.integers(0, 10_000), depth=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_finiteness_agrees_with_enumeration(seed, depth):
    regex = random_regex(random.Random(seed), depth)
    dfa = regex.to_dfa()
    if dfa.is_finite():
        bound = dfa.longest_word_length()
        # no accepted word longer than the computed longest
        for word in words_up_to(min(bound + 2, 6)):
            if len(word) > bound:
                assert not dfa.accepts_word(word)
    else:
        witness = regular_pumping_witness(dfa)
        assert witness is not None
        for i in range(3):
            assert dfa.accepts_word(witness.pumped(i))


@given(seed=st.integers(0, 10_000), depth=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_enumerated_words_are_accepted(seed, depth):
    regex = random_regex(random.Random(seed), depth)
    dfa = regex.to_dfa()
    for word in dfa.enumerate_words(4):
        assert dfa.accepts_word(word)


def random_cfg(rng: random.Random) -> CFG:
    """A small random grammar over nonterminals {S, A} / terminals {a, b}."""
    nonterminals = ["S", "A"]
    symbols = nonterminals + list(ALPHABET)
    productions = []
    for lhs in nonterminals:
        for _ in range(rng.randint(1, 3)):
            rhs = tuple(rng.choice(symbols) for _ in range(rng.randint(1, 3)))
            productions.append((lhs, rhs))
    # Ensure S has at least one all-terminal production half the time,
    # otherwise grammars are frequently empty (still a valid case).
    if rng.random() < 0.5:
        productions.append(("S", tuple(rng.choice(ALPHABET) for _ in range(rng.randint(1, 2)))))
    return CFG(nonterminals, ALPHABET, productions, "S")


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_cfg_generated_words_pass_membership(seed):
    grammar = random_cfg(random.Random(seed))
    for word in grammar.generate_words(4):
        assert grammar.accepts(word), (grammar, word)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_cfg_finiteness_vs_word_growth(seed):
    grammar = random_cfg(random.Random(seed))
    if grammar.is_empty():
        assert grammar.is_finite()
        assert grammar.generate_words(4) <= {()}
        return
    if grammar.is_finite():
        assert pumping_decomposition(grammar) is None
    else:
        decomposition = pumping_decomposition(grammar)
        assert decomposition is not None
        for i in range(3):
            assert grammar.accepts(decomposition.pumped(i)), (grammar, i)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_cfg_normalization_preserves_short_words(seed):
    grammar = random_cfg(random.Random(seed))
    raw_words = {w for w in grammar.generate_words(3) if w}
    normalized_words = {w for w in grammar.normalized().generate_words(3) if w}
    assert raw_words == normalized_words
