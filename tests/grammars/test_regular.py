"""Regexes, NFAs, DFAs: construction, minimization, finiteness, pumping."""

import itertools

import pytest

from repro.grammars import (
    EpsilonRegex,
    SymbolRegex,
    parse_regex,
    regular_pumping_witness,
)


def words_up_to(alphabet, max_len):
    for length in range(max_len + 1):
        yield from itertools.product(alphabet, repeat=length)


def brute_force_language(dfa, alphabet, max_len):
    return {w for w in words_up_to(alphabet, max_len) if dfa.accepts_word(w)}


@pytest.mark.parametrize(
    "pattern,inside,outside",
    [
        ("ab", ["ab"], ["a", "b", "ba", "abb"]),
        ("a*", ["", "a", "aaa"], ["b", "ab"]),
        ("a|b", ["a", "b"], ["", "ab"]),
        ("a(b|c)*d", ["ad", "abd", "acbd"], ["a", "d", "abc"]),
        ("(ab)+", ["ab", "abab"], ["", "a", "aba"]),
        ("ab?c", ["ac", "abc"], ["abbc", "c"]),
    ],
)
def test_regex_nfa_dfa_agree(pattern, inside, outside):
    regex = parse_regex(pattern)
    nfa = regex.to_nfa()
    dfa = regex.to_dfa()
    for word in inside:
        assert nfa.accepts_word(tuple(word)), word
        assert dfa.accepts_word(tuple(word)), word
    for word in outside:
        assert not nfa.accepts_word(tuple(word)), word
        assert not dfa.accepts_word(tuple(word)), word


def test_parse_errors():
    with pytest.raises(ValueError):
        parse_regex("a(b")
    with pytest.raises(ValueError):
        parse_regex("*a")
    with pytest.raises(ValueError):
        parse_regex("a)b")


def test_epsilon_and_symbol_combinators():
    regex = SymbolRegex("x") + (SymbolRegex("y") | EpsilonRegex())
    dfa = regex.to_dfa()
    assert dfa.accepts_word(("x",))
    assert dfa.accepts_word(("x", "y"))
    assert not dfa.accepts_word(("y",))


def test_minimization_preserves_language():
    regex = parse_regex("(a|b)*abb")
    big = regex.to_nfa().to_dfa()
    small = big.minimized()
    assert small.num_states <= big.num_states
    assert brute_force_language(small, "ab", 6) == brute_force_language(big, "ab", 6)


def test_minimization_reaches_canonical_size():
    # (a|b)*abb has a canonical 4-state minimal DFA.
    dfa = parse_regex("(a|b)*abb").to_dfa()
    assert dfa.num_states == 4


def test_finiteness():
    assert parse_regex("ab|ac").to_dfa().is_finite()
    assert not parse_regex("a*").to_dfa().is_finite()
    assert not parse_regex("a(b|c)*d").to_dfa().is_finite()
    assert parse_regex("(a|b)(a|b)").to_dfa().is_finite()


def test_longest_word_length():
    assert parse_regex("ab|abc").to_dfa().longest_word_length() == 3
    assert parse_regex("a?b?").to_dfa().longest_word_length() == 2
    with pytest.raises(ValueError):
        parse_regex("a*").to_dfa().longest_word_length()


def test_enumerate_words():
    dfa = parse_regex("a?b").to_dfa()
    assert dfa.enumerate_words(3) == {("b",), ("a", "b")}


def test_empty_language():
    from repro.grammars import EmptyRegex

    dfa = EmptyRegex().to_dfa()
    assert dfa.is_empty()
    assert dfa.is_finite()


def test_pumping_witness_validity():
    for pattern in ("a*", "(ab)+", "a(b|c)*d", "(a|b)*abb"):
        dfa = parse_regex(pattern).to_dfa()
        witness = regular_pumping_witness(dfa)
        assert witness is not None, pattern
        assert len(witness.y) >= 1
        for i in range(4):
            assert dfa.accepts_word(witness.pumped(i)), (pattern, i)


def test_pumping_witness_none_for_finite():
    assert regular_pumping_witness(parse_regex("ab|ac").to_dfa()) is None


def test_trim_and_coaccessible():
    dfa = parse_regex("ab").to_dfa()
    live = dfa.trim_states()
    assert dfa.start in live
    assert live <= dfa.reachable_states()


def test_dfa_partiality_rejects_unknown_paths():
    dfa = parse_regex("ab").to_dfa()
    assert not dfa.accepts_word(("b", "a"))
    assert dfa.step(dfa.start, "z") is None
