"""RPQ evaluation via the DFA product construction."""


from repro.datalog import Fact
from repro.grammars import parse_regex, product_graph, rpq_pairs, solve_rpq
from repro.semirings import TROPICAL


def brute_force_rpq(dfa, edges, max_len=7):
    out_edges = {}
    for u, a, v in edges:
        out_edges.setdefault(u, []).append((a, v))
    vertices = {u for u, _, _ in edges} | {v for _, _, v in edges}
    pairs = set()

    def walk(origin, current, word):
        if len(word) > max_len:
            return
        if word and dfa.accepts_word(tuple(word)):
            pairs.add((origin, current))
        for a, v in out_edges.get(current, ()):
            walk(origin, v, word + [a])

    for u in sorted(vertices, key=repr):
        walk(u, u, [])
    return frozenset(pairs)


def test_product_graph_size_and_origin():
    dfa = parse_regex("ab").to_dfa()
    edges = [(0, "a", 1), (1, "b", 2)]
    product = product_graph(edges, dfa)
    assert product.size >= 2
    for fact, origin in product.edge_origin.items():
        assert origin.predicate in ("a", "b")
        (u, _qu), (v, _qv) = fact.args
        assert origin.args == (u, v)


def test_rpq_pairs_matches_brute_force():
    import random

    dfa = parse_regex("a(b|c)*").to_dfa()
    for seed in range(4):
        rng = random.Random(seed)
        edges = []
        for _ in range(10):
            u, v = rng.sample(range(5), 2)
            edges.append((u, rng.choice("abc"), v))
        edges = list(dict.fromkeys(edges))
        got = rpq_pairs(edges, dfa)
        expected = brute_force_rpq(dfa, edges, max_len=6)
        assert expected <= got, (seed, expected - got)


def test_rpq_tropical_weights():
    dfa = parse_regex("ab*").to_dfa()
    edges = [(0, "a", 1), (1, "b", 2), (2, "b", 3), (0, "a", 3)]
    weights = {
        Fact("a", (0, 1)): 1.0,
        Fact("b", (1, 2)): 1.0,
        Fact("b", (2, 3)): 1.0,
        Fact("a", (0, 3)): 10.0,
    }
    values = solve_rpq(edges, dfa, TROPICAL, weights=weights)
    assert values[(0, 3)] == 3.0  # path a b b beats direct a of weight 10


def test_rpq_excludes_epsilon_words():
    dfa = parse_regex("a*").to_dfa()  # ε ∈ L
    edges = [(0, "a", 1)]
    pairs = rpq_pairs(edges, dfa)
    assert (0, 0) not in pairs  # ε-path excluded by convention
    assert (0, 1) in pairs


def test_rpq_cycles():
    dfa = parse_regex("(ab)+").to_dfa()
    edges = [(0, "a", 1), (1, "b", 0)]
    pairs = rpq_pairs(edges, dfa)
    assert (0, 0) in pairs  # abab... closed walks accepted
