"""Coverage for remaining public helpers across packages."""


from repro.analysis import dominance_ratio
from repro.circuits import CircuitBuilder, measure
from repro.grammars import parse_regex, product_graph
from repro.semirings import BOOLEAN, COUNTING, TROPICAL


def test_product_graph_helpers():
    dfa = parse_regex("ab").to_dfa()
    product = product_graph([(0, "a", 1), (1, "b", 2)], dfa)
    assert product.source_node(0) == (0, dfa.start)
    accepts = product.accept_nodes(2)
    assert all(state in dfa.accepts for _v, state in accepts)
    assert product.vertices == {0, 1, 2}
    assert product.size == len(product.database)


def test_metrics_as_dict():
    b = CircuitBuilder()
    c = b.build(b.add(b.var("x"), b.var("y")))
    payload = measure(c).as_dict()
    assert payload["size"] == 3
    assert payload["is_formula"] is True


def test_dominance_ratio_detects_growth():
    ns = [8, 16, 32, 64]
    flat = dominance_ratio(ns, [5 * n for n in ns], "n")
    growing = dominance_ratio(ns, [n * n for n in ns], "n")
    assert flat < growing


def test_close_under_ops_generates_new_elements():
    elements = COUNTING.close_under_ops([2, 3], rounds=1)
    assert 5 in elements  # 2 + 3
    assert 6 in elements  # 2 · 3


def test_pairwise_distinct():
    assert TROPICAL.pairwise_distinct([1.0, 1.0, 2.0]) == [1.0, 2.0]


def test_stability_index_of_booleans():
    assert BOOLEAN.stability_index(True) == 0
    assert BOOLEAN.stability_index(False) == 0


def test_bellman_ford_unreachable_sink_not_in_graph():
    from repro.constructions import bellman_ford_circuit
    from repro.datalog import Database
    from repro.circuits import canonical_polynomial

    db = Database.from_edges([(0, 1)])
    circuit = bellman_ford_circuit(db, 0, "nowhere")
    assert canonical_polynomial(circuit).is_zero()


def test_formula_tree_metrics():
    from repro.circuits import FormulaTree

    tree = FormulaTree.combine(3, FormulaTree.var("x"), FormulaTree.var("y"))
    assert tree.depth() == 1
    assert tree.size() == 3
    assert tree.leaves == 2


def test_sweep_report_without_claims():
    from repro.analysis import SweepReport

    report = SweepReport("none", claimed_size=None, claimed_depth=None)
    for n in (2, 4, 8):
        report.add(n=n, m=n, size=n, depth=1)
    assert report.size_ok() and report.depth_ok()
    assert "none" in report.render()
