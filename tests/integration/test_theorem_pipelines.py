"""End-to-end integration tests tying whole theorem pipelines together."""



from repro.boundedness import analyze_boundedness, chain_program_boundedness
from repro.circuits import (
    balance_formula,
    canonical_polynomial,
    circuit_to_formula,
    evaluate,
    evaluate_boolean,
    formula_depth_bound,
)
from repro.constructions import (
    bellman_ford_circuit,
    bounded_circuit,
    finite_rpq_circuit,
    fringe_circuit,
    generic_circuit,
    squaring_circuit,
)
from repro.datalog import Database, Fact, transitive_closure
from repro.grammars import chain_program_to_cfg, parse_regex, rpq_program
from repro.semirings import TROPICAL, VITERBI, positivity_homomorphism
from repro.workloads import path_graph, random_digraph, random_weights

TC = transitive_closure()


def test_theorem_5_3_dichotomy_pipeline():
    """Theorem 5.3: finite RPQ → Θ(log) depth; infinite → TC-like depth.

    The decision procedure (DFA finiteness) routes each RPQ to the
    right construction, and the measured depths separate.
    """
    finite_dfa = parse_regex("abc").to_dfa()
    infinite_dfa = parse_regex("a*b").to_dfa()
    assert finite_dfa.is_finite()
    assert not infinite_dfa.is_finite()

    finite_depths = []
    infinite_depths = []
    for n in (8, 16, 32):
        edges = [(i, "a", i + 1) for i in range(n)]
        edges += [(i, "b", i + 1) for i in range(n)]
        edges += [(i, "c", i + 1) for i in range(n)]
        finite_depths.append(finite_rpq_circuit(edges, finite_dfa, 0, 3).depth)
        from repro.reductions import rpq_circuit_via_tc

        infinite_depths.append(
            rpq_circuit_via_tc(edges, infinite_dfa, 0, n, tc_builder=squaring_circuit).depth
        )
    # finite side: flat-ish (log growth at most)
    assert finite_depths[-1] - finite_depths[0] <= 6
    # infinite side grows like log² (strictly increasing here)
    assert infinite_depths[0] < infinite_depths[-1]


def test_proposition_3_3_and_theorem_3_2_roundtrip():
    """Bounded program circuit → formula (Prop 3.3) → balanced formula
    (Thm 3.2) with equivalence preserved and depth O(log size)."""
    from repro.datalog import bounded_example

    program = bounded_example()
    db = path_graph(6)
    db.add("A", 0)
    db.add("A", 1)
    fact = Fact("T", (0, 4))
    circuit = bounded_circuit(program, db, bound=2, facts=fact)
    formula = circuit_to_formula(circuit)
    assert formula.is_formula()
    balanced = balance_formula(formula)
    assert balanced.is_formula()
    assert canonical_polynomial(balanced) == canonical_polynomial(circuit)
    assert balanced.depth <= formula_depth_bound(formula.size)


def test_proposition_3_6_transfer():
    """Positivity transfer: a circuit over tropical, reinterpreted over
    B through the support homomorphism, decides reachability."""
    db = random_digraph(7, 14, seed=21)
    weights = random_weights(db, seed=21)
    hom = positivity_homomorphism(TROPICAL)
    circuit = bellman_ford_circuit(db, 0, 6)
    tropical_value = evaluate(circuit, TROPICAL, weights)
    boolean_value = evaluate_boolean(circuit, set(db.facts()))
    assert hom(tropical_value) == boolean_value


def test_theorem_3_1_vs_5_6_vs_5_7_vs_6_2_agree():
    """All four TC constructions compute the same polynomial."""
    db = random_digraph(6, 12, seed=8)
    fact = Fact("T", (0, 5))
    polys = [
        canonical_polynomial(generic_circuit(TC, db, fact)),
        canonical_polynomial(bellman_ford_circuit(db, 0, 5)),
        canonical_polynomial(squaring_circuit(db, 0, 5)),
        canonical_polynomial(fringe_circuit(TC, db, fact)),
    ]
    assert polys.count(polys[0]) == 4


def test_proposition_5_5_end_to_end():
    """Chain-program boundedness ⟺ grammar finiteness ⟺ iteration
    profile on word paths."""
    from repro.boundedness import empirical_iteration_probe

    report = chain_program_boundedness(TC)
    assert report.bounded is False
    grammar = chain_program_to_cfg(TC)
    assert not grammar.is_finite()
    probe = empirical_iteration_probe(TC, path_graph, sizes=(4, 8, 12))
    assert probe.bounded is False

    finite_program, _ = rpq_program("ab|cd")
    finite_report = chain_program_boundedness(finite_program)
    assert finite_report.bounded is True
    k = finite_report.certificate

    def family(n):
        edges = [(i, "a", i + 1) for i in range(n)] + [
            (i, "b", i + 1) for i in range(n)
        ]
        return Database.from_labeled_edges(edges)

    finite_probe = empirical_iteration_probe(finite_program, family, sizes=(4, 8, 12))
    iteration_counts = [it for _n, it in finite_probe.evidence]
    assert max(iteration_counts) <= k + 1


def test_weighted_rpq_pipeline_viterbi():
    """RPQ circuit evaluated under Viterbi equals fixpoint evaluation."""
    from repro.grammars import solve_rpq
    from repro.reductions import rpq_circuit_via_tc

    dfa = parse_regex("a(b|c)*").to_dfa()
    edges = [(0, "a", 1), (1, "b", 2), (2, "c", 3), (1, "c", 3)]
    weights = {
        Fact("a", (0, 1)): 0.9,
        Fact("b", (1, 2)): 0.8,
        Fact("c", (2, 3)): 0.7,
        Fact("c", (1, 3)): 0.4,
    }
    expected = solve_rpq(edges, dfa, VITERBI, weights=weights)
    circuit = rpq_circuit_via_tc(edges, dfa, 0, 3)
    assert VITERBI.eq(evaluate(circuit, VITERBI, weights), expected[(0, 3)])


def test_datalog_text_to_circuit_pipeline():
    """Parse text → classify → pick a construction → validate."""
    from repro.datalog import parse_program, provenance_by_proof_trees

    program = parse_program(
        """
        Reach(X, Y) :- Edge(X, Y).
        Reach(X, Y) :- Reach(X, Z), Edge(Z, Y).
        """
    )
    assert program.is_basic_chain() and program.is_linear()
    assert analyze_boundedness(program).bounded is False
    db = Database.from_edges([(0, 1), (1, 2), (0, 2)], predicate="Edge")
    fact = Fact("Reach", (0, 2))
    circuit = generic_circuit(program, db, fact)
    assert canonical_polynomial(circuit) == provenance_by_proof_trees(program, db, fact)
