"""Theorem 6.8 machinery: monadic segments, witnesses, instances."""

import pytest

from repro.circuits import canonical_polynomial
from repro.constructions import generic_circuit
from repro.datalog import DatalogError, Fact, naive_evaluation, reachability, transitive_closure
from repro.reductions import (
    find_monadic_witness,
    monadic_reduction_instance,
    transfer_monadic_circuit_to_tc,
    unfold_segment,
)
from repro.semirings import BOOLEAN
from repro.workloads import layered_graph

U = reachability()


def test_unfold_single_recursive_rule():
    segment = unfold_segment(U, (1,))
    assert segment.goal_predicate == "U"
    assert segment.exit is not None
    assert segment.entry != segment.exit
    assert [a.predicate for a in segment.atoms] == ["E"]


def test_unfold_closing_word():
    segment = unfold_segment(U, (1, 1, 0))
    assert segment.exit is None
    predicates = sorted(a.predicate for a in segment.atoms)
    assert predicates == ["A", "E", "E"]


def test_unfold_rejects_non_monadic():
    with pytest.raises(DatalogError):
        unfold_segment(transitive_closure(), (1,))


def test_unfold_rejects_word_past_init():
    with pytest.raises(DatalogError):
        unfold_segment(U, (0, 1))


def test_find_witness_for_reachability():
    witness = find_monadic_witness(U)
    assert witness is not None
    assert witness.y_word  # nonempty pump
    assert witness.zu_word[-1] == 0  # ends with the init rule


def test_no_witness_for_non_monadic():
    assert find_monadic_witness(transitive_closure()) is None


def test_instance_positive_and_negative():
    witness = find_monadic_witness(U)
    # connected 2-hop graph
    instance = monadic_reduction_instance(U, witness, [("s", "m"), ("m", "t")], "s", "t")
    assert naive_evaluation(U, instance.database, BOOLEAN).value(instance.query)
    # broken middle edge
    broken = monadic_reduction_instance(U, witness, [("s", "m"), ("x", "t")], "s", "t")
    assert not naive_evaluation(U, broken.database, BOOLEAN).value(broken.query)


@pytest.mark.parametrize("seed", range(3))
def test_instance_matches_reachability_on_layered_graphs(seed):
    witness = find_monadic_witness(U)
    graph = layered_graph(2, 2, seed=seed)
    instance = monadic_reduction_instance(
        U, witness, graph.edges, graph.source, graph.sink
    )
    derived = naive_evaluation(U, instance.database, BOOLEAN).value(instance.query)
    assert derived  # generator guarantees s–t connectivity


def test_circuit_transfer():
    witness = find_monadic_witness(U)
    edges = [("s", "m"), ("m", "t"), ("s", "x")]
    instance = monadic_reduction_instance(U, witness, edges, "s", "t")
    circuit = generic_circuit(U, instance.database, instance.query)
    tc_circuit = transfer_monadic_circuit_to_tc(instance, circuit)
    assert tc_circuit.depth <= circuit.depth
    poly = canonical_polynomial(tc_circuit)
    # the only s→t path uses E(s,m) and E(m,t)
    assert len(poly) == 1
    monomial = next(iter(poly.monomials))
    assert monomial.support == {Fact("E", ("s", "m")), Fact("E", ("m", "t"))}


def test_wire_map_tags_one_fact_per_edge():
    witness = find_monadic_witness(U)
    edges = [("s", "m"), ("m", "t")]
    instance = monadic_reduction_instance(U, witness, edges, "s", "t")
    origins = [o for o in instance.wire_map.values() if o is not None]
    assert sorted(o.args for o in origins) == [("m", "t"), ("s", "m")]
