"""Theorem 5.9: TC ⟷ infinite RPQ, both directions, as circuit
reductions."""

import pytest

from repro.circuits import canonical_polynomial, evaluate
from repro.constructions import bellman_ford_circuit, squaring_circuit
from repro.datalog import Database, Fact, provenance_by_proof_trees, transitive_closure
from repro.grammars import parse_regex, rpq_pairs, solve_rpq
from repro.reductions import (
    rpq_circuit_via_tc,
    tc_to_rpq_instance,
    transfer_rpq_circuit_to_tc,
)
from repro.semirings import BOOLEAN, TROPICAL
from repro.workloads import random_digraph

TC = transitive_closure()


def test_instance_construction_shape():
    dfa = parse_regex("(ab)+").to_dfa()
    edges = [(0, 1), (1, 2)]
    instance = tc_to_rpq_instance(edges, 0, 2, dfa)
    # |x| prefix edges + 2·|y| expansion edges + |z| suffix edges
    w = instance.witness
    assert instance.size == len(w.x) + 2 * len(w.y) + len(w.z)
    # wire map: first edge of each expansion carries the origin
    origins = [o for o in instance.wire_map.values() if o is not None]
    assert sorted(o.args for o in origins) == [(0, 1), (1, 2)]


def test_instance_requires_infinite_language():
    dfa = parse_regex("ab").to_dfa()
    with pytest.raises(ValueError):
        tc_to_rpq_instance([(0, 1)], 0, 1, dfa)


@pytest.mark.parametrize("pattern", ["a+", "(ab)+", "a(ba)*"])
@pytest.mark.parametrize("seed", range(3))
def test_instance_level_equivalence(pattern, seed):
    """RPQ fact on the constructed instance ⟺ TC fact on the input."""
    dfa = parse_regex(pattern).to_dfa()
    db = random_digraph(5, 8, seed=seed)
    edges = sorted(db.tuples("E"))
    reachable_pairs = {
        f.args
        for f, v in __import__("repro.datalog", fromlist=["naive_evaluation"])
        .naive_evaluation(TC, db, BOOLEAN)
        .values.items()
        if v
    }
    for source, sink in [(0, 4), (4, 0), (1, 3)]:
        instance = tc_to_rpq_instance(edges, source, sink, dfa)
        answered = (instance.source, instance.sink) in rpq_pairs(
            instance.labeled_edges, dfa
        )
        assert answered == ((source, sink) in reachable_pairs), (pattern, seed, source, sink)


@pytest.mark.parametrize("tc_builder", [bellman_ford_circuit, squaring_circuit], ids=["bf", "sq"])
def test_circuit_transfer_preserves_provenance(tc_builder):
    dfa = parse_regex("(ab)+").to_dfa()
    edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
    instance = tc_to_rpq_instance(edges, 0, 3, dfa)
    rpq_circuit = rpq_circuit_via_tc(
        instance.labeled_edges, dfa, instance.source, instance.sink, tc_builder=tc_builder
    )
    tc_circuit = transfer_rpq_circuit_to_tc(instance, rpq_circuit)
    reference = provenance_by_proof_trees(
        TC, Database.from_edges(edges), Fact("T", (0, 3))
    )
    assert canonical_polynomial(tc_circuit) == reference


def test_transfer_preserves_depth():
    dfa = parse_regex("a+").to_dfa()
    edges = [(0, 1), (1, 2), (2, 3)]
    instance = tc_to_rpq_instance(edges, 0, 3, dfa)
    rpq_circuit = rpq_circuit_via_tc(instance.labeled_edges, dfa, instance.source, instance.sink)
    tc_circuit = transfer_rpq_circuit_to_tc(instance, rpq_circuit)
    assert tc_circuit.depth <= rpq_circuit.depth


# -- the converse reduction ------------------------------------------------


@pytest.mark.parametrize("pattern", ["ab*", "(ab)+", "a(b|c)*"])
def test_rpq_via_tc_matches_product_evaluation(pattern):
    import random

    dfa = parse_regex(pattern).to_dfa()
    rng = random.Random(1)
    edges = []
    for _ in range(10):
        u, v = rng.sample(range(5), 2)
        edges.append((u, rng.choice("abc"), v))
    edges = list(dict.fromkeys(edges))
    weights = {Fact(a, (u, v)): float(rng.randint(1, 9)) for u, a, v in edges}
    expected = solve_rpq(edges, dfa, TROPICAL, weights=weights)
    for (source, sink), value in expected.items():
        if source == sink:
            continue
        circuit = rpq_circuit_via_tc(edges, dfa, source, sink)
        assert evaluate(circuit, TROPICAL, weights) == value, (pattern, source, sink)


def test_rpq_via_tc_unanswerable_pair_is_zero():
    dfa = parse_regex("ab").to_dfa()
    edges = [(0, "a", 1)]
    circuit = rpq_circuit_via_tc(edges, dfa, 0, 1)
    assert canonical_polynomial(circuit).is_zero()
