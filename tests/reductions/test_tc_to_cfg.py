"""Theorem 5.11: TC → unbounded chain Datalog on layered graphs."""

import pytest

from repro.circuits import canonical_polynomial
from repro.constructions import generic_circuit
from repro.datalog import Database, Fact, provenance_by_proof_trees, transitive_closure
from repro.grammars import CFG, cfl_reachable_pairs, chain_program_for
from repro.reductions import tc_to_cfg_instance, transfer_cfg_circuit_to_tc
from repro.workloads import layered_graph

TC = transitive_closure()


def anbn():
    return CFG.from_rules("S -> a S b | a b", start="S")


def test_rejects_finite_grammar():
    finite = CFG.from_rules("S -> a b", start="S")
    with pytest.raises(ValueError):
        tc_to_cfg_instance([(0, 1)], 0, 1, finite, path_length=1)


def test_rejects_bad_path_length():
    with pytest.raises(ValueError):
        tc_to_cfg_instance([(0, 1)], 0, 1, anbn(), path_length=0)


@pytest.mark.parametrize("seed", range(3))
def test_instance_level_equivalence_on_layered_graphs(seed):
    graph = layered_graph(2, 2, seed=seed)
    instance = tc_to_cfg_instance(
        graph.edges, graph.source, graph.sink, anbn(), path_length=graph.path_length
    )
    pairs = cfl_reachable_pairs(anbn(), instance.labeled_edges)
    # layered graphs from the generator always connect s to t
    assert (instance.source, instance.sink) in pairs


def test_instance_negative_when_disconnected():
    # A layered graph missing the middle connection.
    edges = [("s", "a"), ("b", "t")]
    instance = tc_to_cfg_instance(edges, "s", "t", anbn(), path_length=2)
    pairs = cfl_reachable_pairs(anbn(), instance.labeled_edges)
    assert (instance.source, instance.sink) not in pairs


def test_circuit_transfer_preserves_provenance():
    layered_edges = [("s", "a1"), ("s", "a2"), ("a1", "b1"), ("a2", "b1"), ("b1", "t")]
    instance = tc_to_cfg_instance(layered_edges, "s", "t", anbn(), path_length=3)
    program = chain_program_for(anbn())
    instance_db = Database.from_labeled_edges(instance.labeled_edges)
    cfg_circuit = generic_circuit(
        program, instance_db, Fact(program.target, (instance.source, instance.sink))
    )
    tc_circuit = transfer_cfg_circuit_to_tc(instance, cfg_circuit)
    reference = provenance_by_proof_trees(
        TC, Database.from_edges(layered_edges), Fact("T", ("s", "t"))
    )
    assert canonical_polynomial(tc_circuit) == reference
    assert tc_circuit.depth <= cfg_circuit.depth


def test_dyck_grammar_reduction():
    dyck = CFG.from_rules("S -> l r | l S r | S S", start="S")
    layered_edges = [("s", "m"), ("m", "t")]
    instance = tc_to_cfg_instance(layered_edges, "s", "t", dyck, path_length=2)
    pairs = cfl_reachable_pairs(dyck, instance.labeled_edges)
    assert (instance.source, instance.sink) in pairs


def test_wire_map_tags_each_edge_once():
    layered_edges = [("s", "a"), ("a", "t")]
    instance = tc_to_cfg_instance(layered_edges, "s", "t", anbn(), path_length=2)
    origins = [o for o in instance.wire_map.values() if o is not None]
    assert sorted(o.args for o in origins) == [("a", "t"), ("s", "a")]
