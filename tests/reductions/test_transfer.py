"""The wire-rewiring transfer step shared by all reductions."""

import pytest

from repro.circuits import CircuitBuilder, canonical_polynomial, evaluate
from repro.reductions import rewire_circuit
from repro.semirings import Polynomial, TROPICAL


def build():
    b = CircuitBuilder(share=False)
    out = b.add(b.mul(b.var("p"), b.var("q")), b.var("r"))
    return b.build(out)


def test_rewire_to_new_variables():
    circuit = build()
    rewired = rewire_circuit(circuit, {"p": "x", "q": "y", "r": "z"})
    expected = Polynomial.variable("x") * Polynomial.variable("y") + Polynomial.variable("z")
    assert canonical_polynomial(rewired) == expected


def test_rewire_to_constant_one():
    circuit = build()
    rewired = rewire_circuit(circuit, {"p": "x", "q": None, "r": None})
    # p⊗1 ⊕ 1 = x ⊕ 1 = 1 over absorptive semirings.
    assert canonical_polynomial(rewired) == Polynomial.one()


def test_rewire_preserves_depth():
    circuit = build()
    rewired = rewire_circuit(circuit, {"p": "x", "q": "y", "r": None})
    assert rewired.depth <= circuit.depth


def test_rewire_merges_labels():
    circuit = build()
    rewired = rewire_circuit(circuit, {"p": "x", "q": "x", "r": "z"})
    poly = canonical_polynomial(rewired)
    # p⊗q becomes x² (same variable twice)
    assert any(m.exponent("x") == 2 for m in poly.monomials)


def test_strict_mode_requires_total_map():
    with pytest.raises(KeyError):
        rewire_circuit(build(), {"p": "x"})


def test_non_strict_passthrough():
    rewired = rewire_circuit(build(), {"p": "x"}, strict=False)
    assert set(rewired.variables()) == {"x", "q", "r"}


def test_rewire_evaluation_semantics():
    circuit = build()
    rewired = rewire_circuit(circuit, {"p": "x", "q": "y", "r": None})
    # evaluating rewired(x, y) == original(p=x, q=y, r=1)
    original_value = evaluate(circuit, TROPICAL, {"p": 2.0, "q": 3.0, "r": 0.0})
    rewired_value = evaluate(rewired, TROPICAL, {"x": 2.0, "y": 3.0})
    assert original_value == rewired_value
