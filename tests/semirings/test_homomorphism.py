"""Homomorphisms: positivity transfer (Prop 3.6) and Sorp initiality."""

import pytest

from repro.semirings import (
    COUNTING,
    SORP,
    TROPICAL,
    VITERBI,
    boolean_embedding,
    evaluation_homomorphism,
    formal_evaluation_homomorphism,
    positivity_homomorphism,
)


def test_positivity_homomorphism_tropical():
    hom = positivity_homomorphism(TROPICAL)
    assert hom.verify([0.0, 1.0, 2.0, float("inf")]) == []
    assert hom(float("inf")) is False
    assert hom(0.0) is True
    assert hom(5.0) is True


def test_positivity_homomorphism_counting():
    hom = positivity_homomorphism(COUNTING)
    assert hom.verify([0, 1, 2, 3]) == []


def test_positivity_homomorphism_viterbi():
    hom = positivity_homomorphism(VITERBI)
    assert hom.verify([0.0, 0.5, 1.0]) == []


def test_boolean_embedding():
    hom = boolean_embedding(TROPICAL)
    assert hom.verify([True, False]) == []
    assert hom(True) == 0.0
    assert hom(False) == float("inf")


def test_evaluation_homomorphism_is_a_hom():
    x, y = SORP.var("x"), SORP.var("y")
    hom = evaluation_homomorphism(SORP, TROPICAL, {"x": 1.0, "y": 2.0})
    assert hom.verify([x, y, x + y, x * y, SORP.one, SORP.zero]) == []


def test_evaluation_homomorphism_values():
    hom = evaluation_homomorphism(SORP, TROPICAL, {"x": 1.0, "y": 2.0})
    assert hom(SORP.var("x") * SORP.var("y")) == 3.0
    assert hom(SORP.zero) == TROPICAL.zero
    assert hom(SORP.one) == TROPICAL.one


def test_evaluation_homomorphism_rejects_non_absorptive_target():
    # Sorp identities (absorption) do not hold in ℕ, so the "hom" is unsound.
    with pytest.raises(ValueError):
        evaluation_homomorphism(SORP, COUNTING, {"x": 2})


def test_formal_evaluation_homomorphism_any_target():
    from repro.semirings import NATURAL_POLY

    hom = formal_evaluation_homomorphism(NATURAL_POLY, COUNTING, {"x": 2, "y": 3})
    x, y = NATURAL_POLY.var("x"), NATURAL_POLY.var("y")
    assert hom.verify([x, y, x + y, x * y]) == []
    assert hom(x * y + x) == 8


def test_homomorphism_verify_catches_violations():
    from repro.semirings.homomorphism import SemiringHomomorphism

    bogus = SemiringHomomorphism(COUNTING, COUNTING, lambda v: v + 1, "shift")
    failures = bogus.verify([0, 1, 2])
    assert failures  # h(0) ≠ 0 at least


def test_initiality_commutes_with_operations():
    # Evaluate-then-op == op-then-evaluate on a nontrivial pair.
    assignment = {"a": 2.0, "b": 3.0, "c": 4.0}
    p = SORP.var("a") * SORP.var("b")
    q = SORP.var("c")
    lhs = (p + q).evaluate(TROPICAL, assignment)
    rhs = TROPICAL.add(p.evaluate(TROPICAL, assignment), q.evaluate(TROPICAL, assignment))
    assert lhs == rhs
