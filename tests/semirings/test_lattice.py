"""Lattice semirings: the class Chom = bounded distributive lattices."""

import pytest

from repro.semirings import (
    ChainLatticeSemiring,
    DivisibilityLatticeSemiring,
    FiniteLatticeSemiring,
    SubsetLatticeSemiring,
    check_semiring,
)


def test_subset_lattice_axioms():
    lattice = SubsetLatticeSemiring("abc")
    samples = [frozenset("a"), frozenset("ab"), frozenset("bc"), frozenset("c")]
    report = check_semiring(lattice, samples)
    assert report.is_semiring, report.counterexamples
    assert report.in_chom


def test_subset_lattice_ops():
    lattice = SubsetLatticeSemiring("abc")
    a, bc = lattice.element("a"), lattice.element("b", "c")
    assert lattice.add(a, bc) == frozenset("abc")
    assert lattice.mul(a, bc) == frozenset()
    assert lattice.one == frozenset("abc")
    assert lattice.zero == frozenset()


def test_subset_lattice_rejects_foreign_members():
    with pytest.raises(ValueError):
        SubsetLatticeSemiring("abc").element("z")


def test_divisibility_lattice_axioms():
    lattice = DivisibilityLatticeSemiring(30)  # 2·3·5, squarefree
    report = check_semiring(lattice, [1, 2, 3, 5, 6, 10, 15, 30])
    assert report.is_semiring, report.counterexamples
    assert report.in_chom


def test_divisibility_lattice_ops():
    lattice = DivisibilityLatticeSemiring(30)
    assert lattice.add(6, 10) == 30  # lcm
    assert lattice.mul(6, 10) == 2  # gcd
    assert lattice.zero == 1 and lattice.one == 30


def test_divisibility_lattice_rejects_non_squarefree():
    with pytest.raises(ValueError):
        DivisibilityLatticeSemiring(12)  # 2²·3 is not distributive


def test_divisibility_lattice_rejects_non_divisor():
    with pytest.raises(ValueError):
        DivisibilityLatticeSemiring(30).element(7)


def test_chain_lattice_axioms():
    lattice = ChainLatticeSemiring(4)
    report = check_semiring(lattice, [0, 1, 2, 3, 4])
    assert report.is_semiring, report.counterexamples
    assert report.in_chom


def test_chain_lattice_bounds():
    lattice = ChainLatticeSemiring(4)
    assert lattice.add(2, 3) == 3
    assert lattice.mul(2, 3) == 2
    with pytest.raises(ValueError):
        lattice.element(5)


def test_finite_lattice_diamond():
    # The diamond M₂ = 0 < {a, b} < 1 is distributive.
    order = {
        "bot": {"a", "b", "top"},
        "a": {"top"},
        "b": {"top"},
        "top": set(),
    }
    lattice = FiniteLatticeSemiring(order)
    assert lattice.zero == "bot" and lattice.one == "top"
    assert lattice.add("a", "b") == "top"
    assert lattice.mul("a", "b") == "bot"
    report = check_semiring(lattice, list(lattice.elements))
    assert report.is_semiring, report.counterexamples
    assert report.in_chom


def test_finite_lattice_requires_unique_bounds():
    # Two maximal elements: not a bounded lattice.
    order = {"a": set(), "b": set()}
    with pytest.raises(ValueError):
        FiniteLatticeSemiring(order)


def test_finite_lattice_rejects_non_lattice_order():
    # {a, b} has two minimal upper bounds {c, d}: join undefined.
    order = {
        "bot": {"a", "b", "c", "d", "top"},
        "a": {"c", "d", "top"},
        "b": {"c", "d", "top"},
        "c": {"top"},
        "d": {"top"},
        "top": set(),
    }
    with pytest.raises(ValueError):
        FiniteLatticeSemiring(order)
