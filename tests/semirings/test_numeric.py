"""Axioms and paper properties of the concrete numeric semirings."""

import math

import pytest

from repro.semirings import (
    ARCTIC,
    BOOLEAN,
    COUNTING,
    FUZZY,
    LUKASIEWICZ,
    TROPICAL,
    TROPICAL_INT,
    VITERBI,
    StarDivergenceError,
    check_semiring,
    is_p_stable_on,
    stability_bound,
)

SAMPLES = {
    "boolean": [True, False],
    "counting": [0, 1, 2, 3, 7],
    "tropical": [0.0, 1.0, 2.5, 7.0, math.inf],
    "tropical-int": [-3.0, -1.0, 0.0, 2.0, math.inf],
    "viterbi": [0.0, 0.25, 0.5, 0.75, 1.0],
    "fuzzy": [0.0, 0.3, 0.6, 1.0],
    "lukasiewicz": [0.0, 0.25, 0.5, 0.75, 1.0],
    "arctic": [-math.inf, 0.0, 1.0, 3.0],
}

ALL = [BOOLEAN, COUNTING, TROPICAL, TROPICAL_INT, VITERBI, FUZZY, LUKASIEWICZ, ARCTIC]


@pytest.mark.parametrize("semiring", ALL, ids=lambda s: s.name)
def test_core_axioms_hold(semiring):
    report = check_semiring(semiring, SAMPLES[semiring.name])
    assert report.is_semiring, report.counterexamples


@pytest.mark.parametrize("semiring", ALL, ids=lambda s: s.name)
def test_declared_flags_not_refuted(semiring):
    report = check_semiring(semiring, SAMPLES[semiring.name])
    assert report.matches_declared(semiring) == []


def test_absorptive_semirings_are_declared_correctly():
    assert TROPICAL.absorptive and VITERBI.absorptive and FUZZY.absorptive
    assert LUKASIEWICZ.absorptive and BOOLEAN.absorptive
    assert not COUNTING.absorptive and not ARCTIC.absorptive


def test_tropical_int_is_idempotent_but_not_absorptive():
    # The paper's running example: T⁻ with negative weights.
    report = check_semiring(TROPICAL_INT, SAMPLES["tropical-int"])
    assert report.is_idempotent_add
    assert not report.is_absorptive  # 1 ⊕ (-1) = min(0, -1) = -1 ≠ 0


def test_arctic_not_absorptive():
    report = check_semiring(ARCTIC, SAMPLES["arctic"])
    assert not report.is_absorptive


def test_absorptive_implies_idempotent_add():
    # The implication proven in Section 2.2.
    for semiring in ALL:
        if semiring.absorptive:
            report = check_semiring(semiring, SAMPLES[semiring.name])
            assert report.is_idempotent_add


def test_chom_membership():
    assert check_semiring(FUZZY, SAMPLES["fuzzy"]).in_chom
    assert check_semiring(BOOLEAN, SAMPLES["boolean"]).in_chom
    assert not check_semiring(TROPICAL, SAMPLES["tropical"]).in_chom
    assert not check_semiring(LUKASIEWICZ, SAMPLES["lukasiewicz"]).in_chom


def test_tropical_operations():
    assert TROPICAL.add(3.0, 5.0) == 3.0
    assert TROPICAL.mul(3.0, 5.0) == 8.0
    assert TROPICAL.zero == math.inf
    assert TROPICAL.one == 0.0
    assert TROPICAL.is_zero(math.inf)


def test_tropical_natural_order_is_reverse_numeric():
    assert TROPICAL.leq(5.0, 3.0)  # 5 ≤_T 3 since min(5,3)=3... adds down
    assert not TROPICAL.leq(3.0, 5.0)
    assert TROPICAL.leq(math.inf, 0.0)  # 0 is the top element


def test_counting_natural_order():
    assert COUNTING.leq(2, 5)
    assert not COUNTING.leq(5, 2)


def test_absorptive_semirings_are_zero_stable():
    for semiring in (BOOLEAN, TROPICAL, VITERBI, FUZZY, LUKASIEWICZ):
        assert stability_bound(semiring, SAMPLES[semiring.name]) == 0
        assert is_p_stable_on(semiring, SAMPLES[semiring.name], 0)


def test_counting_is_not_stable():
    assert stability_bound(COUNTING, [2]) is None
    assert not is_p_stable_on(COUNTING, [2], 5)


def test_star_absorptive_is_one():
    assert TROPICAL.star(4.0) == TROPICAL.one
    assert VITERBI.star(0.5) == VITERBI.one


def test_star_diverges_on_counting():
    with pytest.raises(StarDivergenceError):
        COUNTING.star(2)


def test_star_converges_on_counting_zero():
    assert COUNTING.star(0) == 1


def test_power():
    assert COUNTING.power(3, 4) == 81
    assert COUNTING.power(3, 0) == 1
    assert TROPICAL.power(2.0, 5) == 10.0
    with pytest.raises(ValueError):
        COUNTING.power(2, -1)


def test_add_all_mul_all_identities():
    assert COUNTING.add_all([]) == 0
    assert COUNTING.mul_all([]) == 1
    assert COUNTING.add_all([1, 2, 3]) == 6
    assert COUNTING.mul_all([2, 3, 4]) == 24


def test_sum_of_products():
    # (2·3) ⊕ (4) over counting = 10; over tropical = min(5, 4) = 4.
    assert COUNTING.sum_of_products([[2, 3], [4]]) == 10
    assert TROPICAL.sum_of_products([[2.0, 3.0], [4.0]]) == 4.0


def test_from_bool():
    assert TROPICAL.from_bool(True) == 0.0
    assert TROPICAL.from_bool(False) == math.inf
    assert COUNTING.from_bool(True) == 1


def test_describe_flags():
    info = TROPICAL.describe()
    assert info["absorptive"] and info["idempotent_add"]
    assert not info["idempotent_mul"]
