"""Sorp(X) and ℕ[X]: monomials, absorption, evaluation, initiality."""

import pytest

from repro.semirings import (
    BOOLEAN,
    COUNTING,
    NATURAL_POLY,
    SORP,
    SORP_IDEMPOTENT,
    TROPICAL,
    FormalPolynomial,
    Monomial,
    Polynomial,
    check_semiring,
)


# -- Monomials -----------------------------------------------------------


def test_monomial_construction_and_merge():
    m = Monomial([("x", 1), ("y", 2), ("x", 1)])
    assert m.exponent("x") == 2
    assert m.exponent("y") == 2
    assert m.exponent("z") == 0
    assert m.degree == 4
    assert m.support == {"x", "y"}


def test_monomial_multiplication():
    a = Monomial({"x": 1})
    b = Monomial({"x": 2, "y": 1})
    assert (a * b) == Monomial({"x": 3, "y": 1})


def test_monomial_divides():
    assert Monomial({"x": 1}).divides(Monomial({"x": 2, "y": 1}))
    assert not Monomial({"x": 3}).divides(Monomial({"x": 2}))
    assert Monomial.unit().divides(Monomial({"x": 1}))


def test_monomial_negative_exponent_rejected():
    with pytest.raises(ValueError):
        Monomial({"x": -1})


def test_monomial_cap_exponents():
    assert Monomial({"x": 3, "y": 1}).cap_exponents() == Monomial({"x": 1, "y": 1})


def test_monomial_repr():
    assert repr(Monomial.unit()) == "1"
    assert "^2" in repr(Monomial({"x": 2}))


# -- Sorp polynomials ----------------------------------------------------


def test_absorption_in_addition():
    x = Polynomial.variable("x")
    xy = x * Polynomial.variable("y")
    # x ⊕ xy = x: the defining absorption law of Sorp(X).
    assert x + xy == x


def test_one_absorbs_everything():
    one = Polynomial.one()
    p = Polynomial.variable("x") + Polynomial.variable("y")
    assert one + p == one


def test_addition_keeps_incomparable_monomials():
    x, y = Polynomial.variable("x"), Polynomial.variable("y")
    assert len(x + y) == 2


def test_multiplication_distributes_and_minimizes():
    x, y = Polynomial.variable("x"), Polynomial.variable("y")
    # (x ⊕ y) ⊗ x = x² ⊕ xy; neither absorbs the other.
    product = (x + y) * x
    assert len(product) == 2
    # but (x ⊕ 1) ⊗ x = x (since x ⊕ 1 = 1, then 1 ⊗ x = x)
    assert (x + Polynomial.one()) * x == x


def test_idempotent_mul_caps_exponents():
    x = Polynomial.variable("x", idempotent_mul=True)
    assert (x * x) == x


def test_sorp_semiring_axioms():
    x, y = SORP.var("x"), SORP.var("y")
    samples = [x, y, x + y, x * y, x * x + y]
    report = check_semiring(SORP, samples)
    assert report.is_semiring, report.counterexamples
    assert report.is_absorptive
    assert report.is_idempotent_add


def test_sorp_idempotent_in_chom():
    x, y = SORP_IDEMPOTENT.var("x"), SORP_IDEMPOTENT.var("y")
    report = check_semiring(SORP_IDEMPOTENT, [x, y, x + y, x * y])
    assert report.is_semiring, report.counterexamples
    assert report.in_chom


def test_polynomial_evaluation_tropical():
    # x·y ⊕ z over tropical with x=1, y=2, z=5 → min(3, 5) = 3.
    poly = Polynomial.variable("x") * Polynomial.variable("y") + Polynomial.variable("z")
    value = poly.evaluate(TROPICAL, {"x": 1.0, "y": 2.0, "z": 5.0})
    assert value == 3.0


def test_polynomial_evaluation_boolean_support():
    poly = Polynomial.variable("x") * Polynomial.variable("y")
    assert poly.evaluate(BOOLEAN, {"x": True, "y": True})
    assert not poly.evaluate(BOOLEAN, {"x": True, "y": False})


def test_polynomial_evaluation_missing_variable():
    with pytest.raises(KeyError):
        Polynomial.variable("x").evaluate(TROPICAL, {})


def test_natural_order_of_sorp():
    x = Polynomial.variable("x")
    xy = x * Polynomial.variable("y")
    assert xy.leq(x)  # xy ≤ x (x absorbs xy)
    assert not x.leq(xy)


def test_zero_and_one():
    assert Polynomial.zero().is_zero()
    assert Polynomial.one().is_one()
    assert not Polynomial.variable("x").is_zero()
    x = Polynomial.variable("x")
    assert x + Polynomial.zero() == x
    assert x * Polynomial.one() == x
    assert (x * Polynomial.zero()).is_zero()


def test_variables_and_degree():
    p = Polynomial.variable("x") * Polynomial.variable("y") + Polynomial.variable("z")
    assert p.variables == {"x", "y", "z"}
    assert p.degree == 2


# -- ℕ[X] ----------------------------------------------------------------


def test_formal_polynomial_counts_multiplicities():
    x = FormalPolynomial.variable("x")
    two_x = x + x
    assert two_x.coefficient(Monomial({"x": 1})) == 2


def test_formal_polynomial_no_absorption():
    x, y = FormalPolynomial.variable("x"), FormalPolynomial.variable("y")
    p = x + x * y
    assert len(p) == 2  # both monomials kept


def test_formal_polynomial_multiplication():
    x, y = FormalPolynomial.variable("x"), FormalPolynomial.variable("y")
    p = (x + y) * (x + y)
    assert p.coefficient(Monomial({"x": 1, "y": 1})) == 2
    assert p.coefficient(Monomial({"x": 2})) == 1


def test_formal_polynomial_evaluate_counting():
    x, y = FormalPolynomial.variable("x"), FormalPolynomial.variable("y")
    p = x * y + x  # 2·3 + 2 = 8
    assert p.evaluate(COUNTING, {"x": 2, "y": 3}) == 8


def test_formal_to_sorp_projection():
    x, y = FormalPolynomial.variable("x"), FormalPolynomial.variable("y")
    p = x + x * y + x  # coefficients dropped, xy absorbed
    assert p.to_sorp() == Polynomial.variable("x")


def test_natural_poly_semiring_axioms():
    x, y = NATURAL_POLY.var("x"), NATURAL_POLY.var("y")
    report = check_semiring(NATURAL_POLY, [x, y, x + y, x * y])
    assert report.is_semiring, report.counterexamples
    assert not report.is_absorptive


def test_formal_rejects_negative_coefficients():
    with pytest.raises(ValueError):
        FormalPolynomial({Monomial({"x": 1}): -1})
