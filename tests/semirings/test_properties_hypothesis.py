"""Property-based verification of semiring laws (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semirings import BOOLEAN, FUZZY, LUKASIEWICZ, TROPICAL, VITERBI, Monomial, Polynomial

tropical_values = st.one_of(
    st.just(math.inf), st.integers(min_value=0, max_value=50).map(float)
)
unit_values = st.integers(min_value=0, max_value=20).map(lambda k: k / 20.0)


def _variable():
    return st.sampled_from(["x", "y", "z", "w"])


def _monomials():
    return st.dictionaries(_variable(), st.integers(1, 3), max_size=3).map(Monomial)


def polynomials(idempotent=False):
    return st.lists(_monomials(), max_size=4).map(
        lambda ms: Polynomial(ms, idempotent_mul=idempotent)
    )


# -- numeric semirings ----------------------------------------------------


@given(a=tropical_values, b=tropical_values, c=tropical_values)
def test_tropical_distributivity(a, b, c):
    assert TROPICAL.mul(a, TROPICAL.add(b, c)) == TROPICAL.add(
        TROPICAL.mul(a, b), TROPICAL.mul(a, c)
    )


@given(a=tropical_values)
def test_tropical_absorption(a):
    assert TROPICAL.add(TROPICAL.one, a) == TROPICAL.one


@given(a=unit_values, b=unit_values, c=unit_values)
def test_viterbi_distributivity(a, b, c):
    lhs = VITERBI.mul(a, VITERBI.add(b, c))
    rhs = VITERBI.add(VITERBI.mul(a, b), VITERBI.mul(a, c))
    assert VITERBI.eq(lhs, rhs)


@given(a=unit_values, b=unit_values, c=unit_values)
def test_lukasiewicz_distributivity(a, b, c):
    lhs = LUKASIEWICZ.mul(a, LUKASIEWICZ.add(b, c))
    rhs = LUKASIEWICZ.add(LUKASIEWICZ.mul(a, b), LUKASIEWICZ.mul(a, c))
    assert LUKASIEWICZ.eq(lhs, rhs)


@given(a=unit_values, b=unit_values)
def test_fuzzy_commutativity_and_absorption(a, b):
    assert FUZZY.add(a, b) == FUZZY.add(b, a)
    assert FUZZY.mul(a, b) == FUZZY.mul(b, a)
    assert FUZZY.add(FUZZY.one, a) == FUZZY.one


# -- Sorp(X): the free absorptive semiring --------------------------------


@given(p=polynomials(), q=polynomials())
def test_sorp_commutativity(p, q):
    assert p + q == q + p
    assert p * q == q * p


@given(p=polynomials(), q=polynomials(), r=polynomials())
@settings(max_examples=50)
def test_sorp_associativity_and_distributivity(p, q, r):
    assert (p + q) + r == p + (q + r)
    assert (p * q) * r == p * (q * r)
    assert p * (q + r) == p * q + p * r


@given(p=polynomials())
def test_sorp_absorption_law(p):
    assert Polynomial.one() + p == Polynomial.one()
    assert p + p == p


@given(p=polynomials(), q=polynomials())
def test_sorp_absorption_of_products(p, q):
    # The general absorption identity: p ⊕ p·q = p.
    assert p + p * q == p


@given(p=polynomials(idempotent=True))
def test_sorp_idempotent_multiplication(p):
    assert p * p == p


@given(ms=st.lists(_monomials(), max_size=4))
def test_minimization_is_an_antichain(ms):
    poly = Polynomial(ms)
    kept = list(poly.monomials)
    for i, a in enumerate(kept):
        for j, b in enumerate(kept):
            if i != j:
                assert not a.divides(b), f"{a} divides {b}: not minimized"


@given(p=polynomials(), q=polynomials())
@settings(max_examples=50)
def test_evaluation_is_homomorphic_into_tropical(p, q):
    assignment = {"x": 1.0, "y": 2.0, "z": 3.0, "w": 5.0}
    lhs_add = (p + q).evaluate(TROPICAL, assignment)
    rhs_add = TROPICAL.add(p.evaluate(TROPICAL, assignment), q.evaluate(TROPICAL, assignment))
    assert lhs_add == rhs_add
    lhs_mul = (p * q).evaluate(TROPICAL, assignment)
    rhs_mul = TROPICAL.mul(p.evaluate(TROPICAL, assignment), q.evaluate(TROPICAL, assignment))
    assert lhs_mul == rhs_mul


@given(p=polynomials())
@settings(max_examples=50)
def test_evaluation_is_homomorphic_into_boolean(p):
    assignment = {"x": True, "y": False, "z": True, "w": True}
    # Support homomorphism: Sorp → Tropical → B commutes with Sorp → B.
    tropical_assignment = {
        var: (0.0 if flag else math.inf) for var, flag in assignment.items()
    }
    via_tropical = p.evaluate(TROPICAL, tropical_assignment) != math.inf
    direct = p.evaluate(BOOLEAN, assignment)
    assert via_tropical == direct
