"""Trop_k: p-stable semirings beyond the absorptive class."""


import pytest

from repro.datalog import Fact, naive_evaluation, transitive_closure
from repro.semirings import KTropicalSemiring, check_semiring, is_p_stable_on
from repro.workloads import random_digraph, random_weights


def samples(semiring):
    return [
        semiring.zero,
        semiring.one,
        semiring.element(1.0),
        semiring.element(2.0, 5.0),
        semiring.element(0.0, 3.0, 7.0),
    ]


@pytest.mark.parametrize("k", [1, 2, 3])
def test_axioms(k):
    semiring = KTropicalSemiring(k)
    report = check_semiring(semiring, samples(semiring))
    assert report.is_semiring, report.counterexamples


def test_k1_is_tropical():
    semiring = KTropicalSemiring(1)
    assert semiring.absorptive
    assert semiring.add((3.0,), (5.0,)) == (3.0,)
    assert semiring.mul((3.0,), (5.0,)) == (8.0,)
    report = check_semiring(semiring, samples(semiring))
    assert report.is_absorptive


def test_k2_not_absorptive_but_stable():
    semiring = KTropicalSemiring(2)
    report = check_semiring(semiring, samples(semiring))
    assert not report.is_absorptive  # 1 ⊕ (1.0,) = (0.0, 1.0) ≠ 1
    assert is_p_stable_on(semiring, samples(semiring), semiring.expected_stability())


@pytest.mark.parametrize("k", [2, 3, 4])
def test_stability_index_is_k_minus_one(k):
    semiring = KTropicalSemiring(k)
    # the single positive weight element needs exactly k-1 extra powers
    assert semiring.stability_index(semiring.element(1.0)) == k - 1


def test_operations():
    semiring = KTropicalSemiring(2)
    assert semiring.add((1.0, 4.0), (2.0, 3.0)) == (1.0, 2.0)
    assert semiring.mul((1.0, 4.0), (2.0,)) == (3.0, 6.0)
    assert semiring.mul((), (1.0,)) == ()  # annihilation
    assert semiring.element(5.0, 1.0, 3.0) == (1.0, 3.0)


def test_invalid_k():
    with pytest.raises(ValueError):
        KTropicalSemiring(0)


def test_k_shortest_walks_via_datalog():
    """TC over Trop_k computes the k shortest walk weights -- the
    provenance story beyond absorptive semirings."""
    k = 3
    semiring = KTropicalSemiring(k)
    db = random_digraph(6, 12, seed=5)
    raw_weights = random_weights(db, seed=5)
    weights = {fact: (w,) for fact, w in raw_weights.items()}
    result = naive_evaluation(
        db and transitive_closure(), db, semiring, weights=weights, max_iterations=200
    )
    assert result.converged

    # brute-force k shortest walks 0 -> 5 (bounded hops; enough because
    # extra loops only add weight)
    adjacency = {}
    for fact, w in raw_weights.items():
        adjacency.setdefault(fact.args[0], []).append((fact.args[1], w))
    walks = []
    frontier = [(0.0, 0)]
    for _hop in range(12):
        fresh = []
        for cost, node in frontier:
            for nxt, w in adjacency.get(node, ()):
                total = cost + w
                fresh.append((total, nxt))
                if nxt == 5:
                    walks.append(total)
        fresh.sort()
        frontier = fresh[:200]
    expected = tuple(sorted(walks)[:k])
    assert result.value(Fact("T", (0, 5))) == expected
