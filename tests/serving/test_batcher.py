"""The micro-batching queue that fills the 64-wide evaluation lanes.

:class:`repro.serving.batcher.LaneBatcher` is the piece that turns
independent awaited point queries into the batches
``evaluate_boolean_batch`` wants, so its flush policy is pinned here:
immediate flush on a full lane, timer flush for stragglers, FIFO
result order, exception fan-out, and honest fill-ratio accounting.
"""

import asyncio

import pytest

from repro.serving import LaneBatcher


def run(coro):
    return asyncio.run(coro)


def echo_flush(items):
    return [("seen", item) for item in items]


def test_single_submit_resolves_via_timer():
    async def scenario():
        batcher = LaneBatcher(echo_flush, lane_width=64, max_delay=0.001)
        result = await batcher.submit("q")
        assert result == ("seen", "q")
        stats = batcher.stats
        assert stats.batches == 1
        assert stats.items == 1
        assert stats.timer_flushes == 1
        assert stats.full_flushes == 0

    run(scenario())


def test_full_lane_flushes_immediately_without_timer_wait():
    async def scenario():
        # A generous delay that would dominate the test if the full-lane
        # path waited for the timer.
        batcher = LaneBatcher(echo_flush, lane_width=8, max_delay=60.0)
        results = await asyncio.gather(*[batcher.submit(i) for i in range(8)])
        assert results == [("seen", i) for i in range(8)]
        assert batcher.stats.full_flushes == 1
        assert batcher.stats.timer_flushes == 0
        assert batcher.stats.fill_ratio == 1.0

    run(scenario())


def test_results_keep_submission_order_within_a_batch():
    async def scenario():
        batcher = LaneBatcher(lambda items: [i * 10 for i in items], lane_width=16, max_delay=0.001)
        results = await asyncio.gather(*[batcher.submit(i) for i in range(16)])
        assert results == [i * 10 for i in range(16)]

    run(scenario())


def test_overflow_splits_into_full_then_timer_batches():
    async def scenario():
        batcher = LaneBatcher(echo_flush, lane_width=4, max_delay=0.001)
        results = await asyncio.gather(*[batcher.submit(i) for i in range(6)])
        assert results == [("seen", i) for i in range(6)]
        stats = batcher.stats
        assert stats.batches == 2
        assert stats.items == 6
        assert stats.full_flushes == 1
        assert stats.timer_flushes == 1
        assert stats.fill_ratio == 6 / (2 * 4)

    run(scenario())


def test_flush_exception_fans_out_to_every_waiter():
    async def scenario():
        def broken(items):
            raise RuntimeError("kernel exploded")

        batcher = LaneBatcher(broken, lane_width=2, max_delay=0.001)
        results = await asyncio.gather(
            batcher.submit(1), batcher.submit(2), return_exceptions=True
        )
        assert all(isinstance(r, RuntimeError) for r in results)
        assert batcher.stats.errors == 1
        # The queue recovers: the next batch is independent.
        good = LaneBatcher(echo_flush, lane_width=2, max_delay=0.001)
        assert await good.submit("x") == ("seen", "x")

    run(scenario())


def test_flush_now_drains_pending_items():
    async def scenario():
        batcher = LaneBatcher(echo_flush, lane_width=64, max_delay=60.0)
        task = asyncio.ensure_future(batcher.submit("late"))
        await asyncio.sleep(0)  # let submit enqueue
        assert batcher.pending == 1
        batcher.flush_now()
        assert await task == ("seen", "late")
        assert batcher.pending == 0

    run(scenario())


def test_constructor_validation():
    with pytest.raises(ValueError):
        LaneBatcher(echo_flush, lane_width=0)
    with pytest.raises(ValueError):
        LaneBatcher(echo_flush, max_delay=-1.0)


def test_empty_stats_report_zero_fill():
    batcher = LaneBatcher(echo_flush)
    snap = batcher.stats.snapshot()
    assert snap["fill_ratio"] == 0.0
    assert snap["batches"] == 0


# -- lifecycle: timer hygiene and close (DESIGN.md §12) --------------------


def test_full_lane_flush_disarms_the_timer():
    async def scenario():
        batcher = LaneBatcher(echo_flush, lane_width=4, max_delay=60.0)
        submits = [asyncio.ensure_future(batcher.submit(i)) for i in range(3)]
        await asyncio.sleep(0)
        assert batcher.timer_armed  # straggler timer covers the partial lane
        submits.append(asyncio.ensure_future(batcher.submit(3)))
        await asyncio.gather(*submits)
        # The lane-full flush must cancel the armed timer: no stale
        # call_later handle may fire into the *next* batch.
        assert not batcher.timer_armed

    run(scenario())


def test_flush_now_disarms_the_timer():
    async def scenario():
        batcher = LaneBatcher(echo_flush, lane_width=8, max_delay=60.0)
        future = asyncio.ensure_future(batcher.submit("q"))
        await asyncio.sleep(0)
        assert batcher.timer_armed
        batcher.flush_now()
        assert not batcher.timer_armed
        assert await future == ("seen", "q")

    run(scenario())


def test_close_fails_parked_futures_with_clear_error():
    from repro.serving import BatcherClosed

    async def scenario():
        batcher = LaneBatcher(echo_flush, lane_width=8, max_delay=60.0)
        parked = [asyncio.ensure_future(batcher.submit(i)) for i in range(3)]
        await asyncio.sleep(0)
        batcher.close()
        assert not batcher.timer_armed
        for future in parked:
            with pytest.raises(BatcherClosed):
                await future
        # After close, submissions fail fast instead of parking forever.
        with pytest.raises(BatcherClosed):
            await batcher.submit("late")

    run(scenario())


def test_close_propagates_custom_exception():
    from repro.serving import BatcherClosed

    async def scenario():
        batcher = LaneBatcher(echo_flush, lane_width=8, max_delay=60.0)
        parked = asyncio.ensure_future(batcher.submit("q"))
        await asyncio.sleep(0)
        batcher.close(BatcherClosed("server shut down"))
        with pytest.raises(BatcherClosed, match="server shut down"):
            await parked

    run(scenario())
