"""Seeded chaos suite for the serving stack (DESIGN.md §12).

The resilience contract under deterministic fault injection: every
response a client observes is either **exactly correct** (crosschecked
against direct in-process evaluation of the same circuit) or an
**explicit, well-formed 4xx/5xx** -- never a hang (every scenario runs
under an outer ``asyncio.wait_for`` bound), never a silently wrong
answer, never a fabricated response parsed out of a torn frame.

Faults are drawn from :class:`repro.testing.FaultInjector` streams
seeded by ``CHAOS_SEED`` (env; default 0), so a CI matrix varies the
seed and any failure reproduces from its seed number.  Each scenario
asserts its plan actually fired -- a chaos test that injected nothing
proves nothing.
"""

import asyncio
import os
import random

from repro.api import Session
from repro.datalog import Database, Fact, parse_program
from repro.serving import CircuitClient, CircuitServer, RetryPolicy, ServerError
from repro.testing import (
    FLUSH_RAISE,
    FLUSH_SLOW,
    MAINTAINER_CRASH,
    PARTIAL_WRITE,
    SOCKET_RESET,
    FaultInjector,
)

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
SCENARIO_TIMEOUT = 120.0  # the "never a hang" bound

TC = "T(X,Y) :- E(X,Y).\nT(X,Z) :- T(X,Y), E(Y,Z)."
VERTICES = 6
EDGE_UNIVERSE = [f"E({u},{v})" for u in range(VERTICES) for v in range(u + 1, VERTICES)]
EDGES = ["E(0,1)", "E(1,2)", "E(2,3)", "E(3,4)", "E(0,2)"]

#: Statuses the server is allowed to answer with under faults.  Wrong
#: *values* are forbidden; these explicit failures are the contract.
ALLOWED_ERROR_STATUSES = {400, 404, 408, 413, 422, 500, 503, 504}


def run_bounded(coro):
    return asyncio.run(asyncio.wait_for(coro, SCENARIO_TIMEOUT))


def oracle(edges, output):
    """Direct in-process evaluation: the ground truth for crosschecks."""
    program = parse_program(TC, target="T")
    database = Database()
    for edge in edges:
        u, v = edge[2:-1].split(",")
        database.add_fact(Fact("E", (int(u), int(v))))
    return Session(program, database)


def expected_boolean(session, output, true_facts):
    compiled = session.compiled(output)
    subset = frozenset(
        Fact("E", tuple(int(x) for x in f[2:-1].split(","))) for f in true_facts
    )
    return compiled.evaluate_boolean_batch([subset])[0]


# -- wire chaos: resets, torn frames, flush failures -----------------------


def test_boolean_queries_survive_wire_and_kernel_chaos():
    seed = CHAOS_SEED
    injector = FaultInjector(
        seed=seed,
        rates={
            SOCKET_RESET: 0.10,
            PARTIAL_WRITE: 0.10,
            FLUSH_RAISE: 0.05,
            FLUSH_SLOW: 0.05,
        },
        delays={FLUSH_SLOW: 0.005},
    )
    plan_rng = random.Random(f"chaos-plan:{seed}")
    output = "T(0,4)"
    session = oracle(EDGES, output)
    output_fact = Fact("T", (0, 4))
    # Pre-plan every worker's queries so the traffic is a pure
    # function of the seed.
    workers, per_worker = 8, 12
    plans = [
        [
            [f for f in EDGES if plan_rng.random() < 0.7]
            for _ in range(per_worker)
        ]
        for _ in range(workers)
    ]
    expectations = [
        [expected_boolean(session, output_fact, subset) for subset in plan]
        for plan in plans
    ]

    async def scenario():
        server = CircuitServer(fault_injector=injector)
        host, port = await server.start()
        register_client = CircuitClient(host, port)
        reg = await register_client.register(TC, EDGES, output, target="T")
        key = reg["key"]
        wrong, ok, failed = [], 0, 0

        async def worker(worker_id):
            nonlocal ok, failed
            client = CircuitClient(
                host,
                port,
                retry=RetryPolicy(max_attempts=6, base_delay=0.005, budget=64.0),
                retry_seed=seed * 1000 + worker_id,
            )
            try:
                for subset, want in zip(plans[worker_id], expectations[worker_id]):
                    try:
                        got = await client.boolean(key, subset)
                    except ServerError as exc:
                        assert exc.status in ALLOWED_ERROR_STATUSES
                        failed += 1
                        continue
                    except (ConnectionError, asyncio.IncompleteReadError):
                        failed += 1  # explicit failure: retries exhausted
                        continue
                    if got is not want:
                        wrong.append((worker_id, subset, want, got))
                    else:
                        ok += 1
            finally:
                await client.close()

        await asyncio.gather(*[worker(i) for i in range(workers)])
        # The contract: zero silently wrong answers, ever.
        assert wrong == []
        # The run was real: most queries succeeded AND faults fired.
        assert ok > workers * per_worker // 2
        assert sum(injector.fired.values()) > 0
        # The server survived the whole storm.
        assert (await register_client.healthz())["status"] == "ok"
        stats = await register_client.stats()
        assert stats["resilience"]["internal_errors"] >= injector.fired[FLUSH_RAISE]
        await register_client.close()
        await server.close()

    run_bounded(scenario())


# -- maintenance chaos: mid-stream maintainer crashes ----------------------


def test_fact_stream_stays_exact_under_maintainer_crashes():
    seed = CHAOS_SEED
    injector = FaultInjector(seed=seed, rates={MAINTAINER_CRASH: 0.25})
    plan_rng = random.Random(f"chaos-facts:{seed}")
    output = "T(0,5)"
    output_fact = Fact("T", (0, 5))

    async def scenario():
        server = CircuitServer(fault_injector=injector)
        host, port = await server.start()
        client = CircuitClient(host, port)
        reg = await client.register(TC, EDGES, output, target="T")
        key = reg["key"]
        live = list(EDGES)
        deltas = 0
        for _ in range(25):
            candidates = [e for e in EDGE_UNIVERSE if e not in live]
            if live and (not candidates or plan_rng.random() < 0.4):
                edge = live[plan_rng.randrange(len(live))]
                payload = await client.facts(key, retract=[edge])
                live.remove(edge)
                assert payload["retracted"] == 1
            else:
                edge = candidates[plan_rng.randrange(len(candidates))]
                payload = await client.facts(key, insert=[edge])
                live.append(edge)
                assert payload["inserted"] == 1
            deltas += 1
            # Crosscheck after EVERY delta: the served circuit answers
            # exactly like a from-scratch evaluation of the live edges.
            want = expected_boolean(oracle(live, output), output_fact, live)
            got = await client.boolean(key, live)
            assert got is want, (live, payload)
        # The plan really crashed the maintainer, and the degradation
        # is visible to operators in /stats -- not swallowed silently.
        assert injector.fired[MAINTAINER_CRASH] > 0
        stats = await client.stats()
        assert stats["maintenance"]["degradations"] > 0
        assert stats["resilience"]["degraded_deltas"] > 0
        circuit_stats = stats["per_circuit"][key]
        assert circuit_stats["stream"]["degradations"] > 0
        await client.close()
        await server.close()

    run_bounded(scenario())


def test_mixed_chaos_full_stack():
    """Everything at once, at lower rates: wire faults over a mutating
    circuit, queries crosschecked between deltas."""
    seed = CHAOS_SEED
    injector = FaultInjector(
        seed=seed,
        rates={
            SOCKET_RESET: 0.06,
            PARTIAL_WRITE: 0.06,
            FLUSH_RAISE: 0.04,
            MAINTAINER_CRASH: 0.15,
        },
    )
    plan_rng = random.Random(f"chaos-mixed:{seed}")
    output = "T(0,4)"
    output_fact = Fact("T", (0, 4))

    async def scenario():
        server = CircuitServer(fault_injector=injector)
        host, port = await server.start()
        client = CircuitClient(
            host,
            port,
            retry=RetryPolicy(max_attempts=6, base_delay=0.005, budget=64.0),
            retry_seed=seed,
        )
        reg = await client.register(TC, EDGES, output, target="T")
        key = reg["key"]
        live = list(EDGES)
        ok = failed = 0
        for step in range(30):
            roll = plan_rng.random()
            try:
                if roll < 0.35:
                    candidates = [e for e in EDGE_UNIVERSE if e not in live]
                    if candidates:
                        edge = candidates[plan_rng.randrange(len(candidates))]
                        await client.facts(key, insert=[edge])
                        live.append(edge)
                elif roll < 0.5 and len(live) > 1:
                    edge = live[plan_rng.randrange(len(live))]
                    await client.facts(key, retract=[edge])
                    live.remove(edge)
                else:
                    want = expected_boolean(oracle(live, output), output_fact, live)
                    got = await client.boolean(key, live)
                    assert got is want, (step, live)
                    ok += 1
            except ServerError as exc:
                assert exc.status in ALLOWED_ERROR_STATUSES
                failed += 1
            except (ConnectionError, asyncio.IncompleteReadError):
                failed += 1
        assert ok > 0
        assert sum(injector.fired.values()) > 0
        # Liveness to the end: disarm the injector, then a fresh client
        # must get the exact answer on the first clean attempt.
        injector.rates = {site: 0.0 for site in injector.rates}
        finale = CircuitClient(host, port)
        want = expected_boolean(oracle(live, output), output_fact, live)
        assert await finale.boolean(key, live) is want
        await finale.close()
        await client.close()
        await server.close()

    run_bounded(scenario())
