"""Connection-level failure behavior of the serving layer (§12).

Three properties a hand-rolled HTTP server is most likely to get
wrong, pinned as tests: a peer that vanishes mid-request never takes
the server down with it; an application-level 4xx leaves the
keep-alive connection usable (only *framing* errors poison the
stream); and back-to-back pipelined requests on one connection are
answered completely and in order.
"""

import asyncio
import json

from repro.serving import CircuitClient, CircuitServer

TC = "T(X,Y) :- E(X,Y).\nT(X,Z) :- T(X,Y), E(Y,Z)."
EDGES = ["E(0,1)", "E(1,2)", "E(2,3)", "E(0,2)"]


def run(coro):
    return asyncio.run(coro)


async def with_server(scenario, **server_kwargs):
    async with CircuitServer(**server_kwargs) as (host, port):
        async with CircuitClient(host, port) as client:
            return await scenario(host, port, client)


def frame(method, path, payload=None):
    body = b"" if payload is None else json.dumps(payload).encode()
    return (
        f"{method} {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
    ).encode() + body


async def read_one_response(reader):
    """Read exactly one framed response; returns (status, payload)."""
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length)
    return status, json.loads(body)


def test_peer_disconnect_mid_request_leaves_server_healthy():
    async def scenario(host, port, client):
        # Declare a body, send half of it, vanish.
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"POST /solve HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"pro")
        await writer.drain()
        writer.close()
        await asyncio.sleep(0.05)
        # And again with an abortive close mid-keep-alive.
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(frame("GET", "/healthz"))
        await writer.drain()
        await read_one_response(reader)
        writer.transport.abort()
        await asyncio.sleep(0.05)
        # The server took no damage: normal traffic still works.
        assert (await client.healthz())["status"] == "ok"
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        assert await client.boolean(reg["key"], EDGES) is True

    run(with_server(scenario))


def test_keep_alive_survives_application_4xx():
    async def scenario(host, port, client):
        reader, writer = await asyncio.open_connection(host, port)
        # 404: unknown route.
        writer.write(frame("GET", "/nonsense"))
        await writer.drain()
        status, payload = await read_one_response(reader)
        assert status == 404
        # 400: known route, bad body.  Same connection.
        writer.write(frame("POST", "/solve", {"program": ""}))
        await writer.drain()
        status, payload = await read_one_response(reader)
        assert status == 400
        # The connection is still perfectly usable for a 200.
        writer.write(frame("GET", "/healthz"))
        await writer.drain()
        status, payload = await read_one_response(reader)
        assert (status, payload["status"]) == (200, "ok")
        writer.close()

    run(with_server(scenario))


def test_pipelined_requests_are_answered_in_order():
    async def scenario(host, port, client):
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        key = reg["key"]
        reader, writer = await asyncio.open_connection(host, port)
        # Three requests in one burst: healthz, a boolean batch, stats.
        blob = (
            frame("GET", "/healthz")
            + frame("POST", f"/circuits/{key}/boolean", {"batches": [EDGES, EDGES[:2]]})
            + frame("GET", "/healthz")
        )
        writer.write(blob)
        await writer.drain()
        status1, payload1 = await read_one_response(reader)
        status2, payload2 = await read_one_response(reader)
        status3, payload3 = await read_one_response(reader)
        assert (status1, payload1["status"]) == (200, "ok")
        assert (status2, payload2["values"]) == (200, [True, False])
        assert (status3, payload3["status"]) == (200, "ok")
        writer.close()

    run(with_server(scenario))


def test_interleaved_connections_make_independent_progress():
    async def scenario(host, port, client):
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        key = reg["key"]
        # Many clients firing concurrently: every response matches its
        # own query even though the lane batcher mixes them server-side.
        clients = [CircuitClient(host, port) for _ in range(8)]
        try:
            expected = [i % 2 == 0 for i in range(8)]
            results = await asyncio.gather(
                *[
                    c.boolean(key, EDGES if want else EDGES[:2])
                    for c, want in zip(clients, expected)
                ]
            )
            assert results == expected
        finally:
            for c in clients:
                await c.close()

    run(with_server(scenario))
