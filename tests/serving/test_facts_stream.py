"""End-to-end tests for the ``/circuits/<key>/facts`` streaming route.

The route's contract (DESIGN.md §11): a registered circuit stays
servable while the underlying database churns.  Fact deltas are
absorbed by the entry's :class:`~repro.api.StreamSession` -- the
maintained fixpoint regrounds differentially, retracted leaves are
completed to semiring ``0`` in every later assignment, and only an
insert introducing a leaf the compiled circuit has never seen forces
a recompile.  After *every* delta the Boolean lanes, the numeric
valuation route and the incremental update route must agree exactly
with direct in-process evaluation of the replayed database.

pytest-asyncio is not a dependency, so every test drives its own
event loop through ``asyncio.run``.
"""

import asyncio

from repro.api import solve
from repro.datalog import Database, Fact, parse_program
from repro.semirings import BOOLEAN, TROPICAL
from repro.serving import CircuitClient, CircuitServer, ServerError

TC = "T(X,Y) :- E(X,Y).\nT(X,Z) :- T(X,Y), E(Y,Z)."
PROGRAM = parse_program(TC, target="T")
OUT = Fact("T", (0, 3))

START = {
    Fact("E", (0, 1)): 1.0,
    Fact("E", (1, 2)): 2.0,
    Fact("E", (2, 3)): 3.0,
}

# (insert {fact: weight}, retract [facts]) steps; mirrors a sliding
# window: a shortcut arrives, gets reweighted, expires, then returns.
STEPS = [
    ({Fact("E", (0, 2)): 1.5}, []),
    ({}, [Fact("E", (1, 2))]),
    ({Fact("E", (1, 3)): 0.25}, [Fact("E", (0, 2))]),
    ({Fact("E", (1, 2)): 4.0}, []),
    ({}, [Fact("E", (1, 3))]),
]


def run(coro):
    return asyncio.run(coro)


async def with_server(scenario, **server_kwargs):
    async with CircuitServer(**server_kwargs) as (host, port):
        async with CircuitClient(host, port) as client:
            return await scenario(host, port, client)


def replay(weights):
    database = Database()
    for fact, weight in weights.items():
        database.add_fact(fact, weight=weight)
    return database


async def register(client):
    report = await client.register(
        TC, list(START), OUT, target="T", weights=START
    )
    return report["key"]


def test_facts_stream_matches_direct_replay():
    """The headline interleaving: after every delta, Boolean lanes,
    numeric valuations and a fresh solve of the replayed database all
    agree."""

    async def scenario(host, port, client):
        key = await register(client)
        live = dict(START)
        for insert, retract in STEPS:
            report = await client.facts(
                key,
                insert=[(fact, weight) for fact, weight in insert.items() if fact not in live],
                retract=retract,
                weights={f: w for f, w in insert.items() if f in live},
            )
            for fact in retract:
                live.pop(fact)
            live.update(insert)

            expected = solve(PROGRAM, replay(live), TROPICAL)
            expected_bool = solve(PROGRAM, replay(live), BOOLEAN)
            assert report["database_fingerprint"]

            # Numeric valuation from the maintained base assignment.
            value = await client.evaluate(key, "tropical")
            assert value == expected.value(OUT)

            # Boolean point queries coalesce into lanes: fire several
            # concurrently so the batcher actually packs them.
            queries = [list(live), list(live)[:1], []]
            got = await asyncio.gather(
                *(client.boolean(key, q) for q in queries)
            )
            assert got[0] is bool(expected_bool.value(OUT))
            assert got[1] is False  # one edge cannot span 0 → 3
            assert got[2] is False

    run(with_server(scenario))


def test_facts_recompiles_only_for_unseen_leaves():
    async def scenario(host, port, client):
        key = await register(client)
        # Reweight and retract: the compiled circuit already knows
        # every touched leaf, so no recompile.
        report = await client.facts(key, weights={Fact("E", (1, 2)): 0.5})
        assert report["recompiled"] is False and report["reweighted"] == 1
        report = await client.facts(key, retract=[Fact("E", (2, 3))])
        assert report["recompiled"] is False and report["retracted"] == 1
        # Re-inserting a retracted edge: the circuit still has that
        # leaf, so a plain value push suffices.
        report = await client.facts(key, insert=[(Fact("E", (2, 3)), 1.0)])
        assert report["recompiled"] is False and report["inserted"] == 1
        assert (await client.evaluate(key, "tropical")) == 2.5
        # A brand-new edge is an unseen input gate: recompile.
        report = await client.facts(key, insert=[(Fact("E", (0, 3)), 9.0)])
        assert report["recompiled"] is True and report["inserted"] == 1
        assert (await client.evaluate(key, "tropical")) == 2.5

    run(with_server(scenario))


def test_facts_interleaves_with_update_sessions():
    """The sparse-delta /update route keeps working across fact
    deltas; its what-if baseline tracks the streamed database."""

    async def scenario(host, port, client):
        key = await register(client)
        before = await client.update(key, "tropical", {Fact("E", (0, 1)): 0.5})
        assert before["outputs"] == [5.5]
        await client.facts(key, weights={Fact("E", (2, 3)): 1.0})
        after = await client.update(key, "tropical", {Fact("E", (0, 1)): 0.5})
        assert after["outputs"] == [3.5]

    run(with_server(scenario))


def test_facts_validation_is_atomic():
    async def scenario(host, port, client):
        key = await register(client)
        baseline = await client.evaluate(key, "tropical")

        # One bad item anywhere rejects the whole delta untouched.
        try:
            await client.facts(
                key,
                insert=[Fact("E", (7, 8))],
                retract=[Fact("E", (9, 9))],
            )
        except ServerError as exc:
            assert exc.status == 400
        else:  # pragma: no cover
            raise AssertionError("expected HTTP 400")

        for bad in (
            dict(insert=[Fact("T", (0, 1))]),  # IDB facts never stream
            dict(),  # empty delta
        ):
            try:
                await client.facts(key, **bad)
            except ServerError as exc:
                assert exc.status == 400
            else:  # pragma: no cover
                raise AssertionError("expected HTTP 400")

        assert (await client.evaluate(key, "tropical")) == baseline

    run(with_server(scenario))
