"""The serving failure model (DESIGN.md §12), piece by piece.

Covers the resilience primitives in isolation (deadlines, the
idempotency cache, the retry policy's backoff curve) and each server
behavior end-to-end over real sockets: malformed framing maps to 400
(the Content-Length regression), oversized bodies to 413, slow-loris
headers to 408, admission control to 503 + Retry-After, handler
deadline expiry to 504, graceful drain completes parked lane queries,
and idempotency tokens make ``/facts`` replay-safe.
"""

import asyncio
import random

import pytest

from repro.serving import (
    CircuitClient,
    CircuitServer,
    Deadline,
    IdempotencyCache,
    ResilienceConfig,
    RetryPolicy,
    ServerError,
)
from repro.testing import FaultInjector, HANDLER_STALL, SOCKET_RESET

TC = "T(X,Y) :- E(X,Y).\nT(X,Z) :- T(X,Y), E(Y,Z)."
EDGES = ["E(0,1)", "E(1,2)", "E(2,3)", "E(0,2)"]


def run(coro):
    return asyncio.run(coro)


async def with_server(scenario, **server_kwargs):
    async with CircuitServer(**server_kwargs) as (host, port):
        async with CircuitClient(host, port) as client:
            return await scenario(host, port, client)


async def raw_roundtrip(host, port, blob, read_all=True):
    """Send raw bytes, return everything the server sends back."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(blob)
    await writer.drain()
    data = await reader.read(-1) if read_all else await reader.readline()
    writer.close()
    return data


def http(method, path, body=b"", extra_headers=""):
    return (
        f"{method} {path} HTTP/1.1\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra_headers}"
        "\r\n"
    ).encode() + body


# -- primitives ------------------------------------------------------------


def test_deadline_counts_down_and_expires():
    deadline = Deadline("header", 0.01)
    assert deadline.remaining() <= 0.01
    assert not deadline.expired
    import time

    time.sleep(0.02)
    assert deadline.expired
    assert deadline.remaining() <= 0
    exc = deadline.exceeded()
    assert exc.phase == "header"
    assert "0.010s" in str(exc)


def test_resilience_config_deadline_factory():
    config = ResilienceConfig(header_timeout=None, handler_timeout=1.0)
    assert config.deadline("header") is None
    deadline = config.deadline("handler")
    assert deadline is not None and deadline.phase == "handler"


def test_idempotency_cache_replays_and_evicts():
    cache = IdempotencyCache(capacity=2)
    assert cache.get("c1", "t1") is None
    cache.put("c1", "t1", 200, {"inserted": 1})
    status, payload = cache.get("c1", "t1")
    assert status == 200
    assert payload == {"inserted": 1, "replayed": True}
    # The stored payload itself is not mutated by replay.
    cache.put("c2", "t1", 200, {"inserted": 2})  # distinct scope, same token
    assert cache.get("c1", "t1")[1]["inserted"] == 1
    cache.put("c1", "t2", 200, {"inserted": 3})  # capacity 2: evicts LRU (c2, t1)
    assert cache.get("c2", "t1") is None
    assert cache.snapshot()["entries"] == 2
    with pytest.raises(ValueError):
        IdempotencyCache(capacity=0)


def test_retry_policy_backoff_is_bounded_and_jittered():
    policy = RetryPolicy(base_delay=0.01, max_delay=0.1, multiplier=2.0, jitter=0.5)
    rng = random.Random(7)
    delays = [policy.backoff(attempt, rng) for attempt in range(10)]
    assert all(0 < d <= 0.1 for d in delays)
    # The curve grows before the cap: attempt 0 < cap.
    assert delays[0] <= 0.01
    flat = RetryPolicy(base_delay=0.01, jitter=0.0)
    assert flat.backoff(0, rng) == 0.01
    assert flat.backoff(1, rng) == 0.02


# -- framing errors (the Content-Length regression) ------------------------


def test_malformed_content_length_maps_to_400():
    async def scenario(host, port, client):
        blob = b"POST /solve HTTP/1.1\r\nContent-Length: abc\r\n\r\n"
        data = await raw_roundtrip(host, port, blob)
        assert b"400 Bad Request" in data
        assert b"malformed Content-Length" in data
        stats = await client.stats()
        assert stats["resilience"]["bad_requests"] == 1

    run(with_server(scenario))


def test_negative_content_length_maps_to_400():
    async def scenario(host, port, client):
        blob = b"POST /solve HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        data = await raw_roundtrip(host, port, blob)
        assert b"400 Bad Request" in data
        assert b"negative Content-Length" in data

    run(with_server(scenario))


def test_oversized_body_is_rejected_with_413_without_reading_it():
    async def scenario(host, port, client):
        blob = b"POST /solve HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
        data = await raw_roundtrip(host, port, blob)
        assert b"413 Payload Too Large" in data
        stats = await client.stats()
        assert stats["resilience"]["oversize_rejections"] == 1

    run(with_server(scenario, resilience=ResilienceConfig(max_body_bytes=1024)))


# -- deadlines -------------------------------------------------------------


def test_slow_loris_headers_get_408_and_a_closed_connection():
    async def scenario(host, port, client):
        reader, writer = await asyncio.open_connection(host, port)
        # Request line arrives, then the headers dribble forever.
        writer.write(b"GET /healthz HTTP/1.1\r\nX-Slow:")
        await writer.drain()
        data = await asyncio.wait_for(reader.read(-1), timeout=5.0)
        writer.close()
        assert b"408 Request Timeout" in data
        stats = await client.stats()
        assert stats["resilience"]["header_timeouts"] >= 1

    run(with_server(scenario, resilience=ResilienceConfig(header_timeout=0.05)))


def test_stalled_body_gets_408():
    async def scenario(host, port, client):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"POST /solve HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"par")
        await writer.drain()
        data = await asyncio.wait_for(reader.read(-1), timeout=5.0)
        writer.close()
        assert b"408 Request Timeout" in data
        stats = await client.stats()
        assert stats["resilience"]["body_timeouts"] == 1

    run(with_server(scenario, resilience=ResilienceConfig(body_timeout=0.05)))


def test_idle_keep_alive_connection_is_closed_silently():
    async def scenario(host, port, client):
        reader, writer = await asyncio.open_connection(host, port)
        # No request at all: the header deadline reaps the connection
        # without writing a response onto it.
        data = await asyncio.wait_for(reader.read(-1), timeout=5.0)
        writer.close()
        assert data == b""

    run(with_server(scenario, resilience=ResilienceConfig(header_timeout=0.05)))


def test_handler_deadline_maps_to_504():
    injector = FaultInjector(seed=3, rates={HANDLER_STALL: 1.0}, delays={HANDLER_STALL: 5.0})

    async def scenario(host, port, client):
        status, payload = await client.request("GET", "/healthz")
        assert status == 504
        assert "budget" in payload["error"]
        # The connection survives a 504 (the handler was cancelled,
        # the framing is intact) -- turn off the stall and go again.
        injector.rates[HANDLER_STALL] = 0.0
        assert (await client.healthz())["status"] == "ok"
        stats = await client.stats()
        assert stats["resilience"]["handler_timeouts"] == 1

    run(
        with_server(
            scenario,
            resilience=ResilienceConfig(handler_timeout=0.05),
            fault_injector=injector,
        )
    )


# -- admission control -----------------------------------------------------


def test_connection_shed_sends_503_with_retry_after():
    async def scenario(host, port, client):
        await client.healthz()  # client's keep-alive connection is the one slot
        data = await raw_roundtrip(host, port, b"")
        assert b"503 Service Unavailable" in data
        assert b"Retry-After:" in data
        stats = await client.stats()
        assert stats["resilience"]["shed_connections"] >= 1

    run(with_server(scenario, resilience=ResilienceConfig(max_connections=1)))


def test_inflight_shed_sends_503_and_keeps_the_connection():
    async def scenario(host, port, client):
        status, payload = await client.request("GET", "/healthz")
        assert status == 503
        assert "retry_after" in payload
        # Shedding is per-request: the connection stays usable.
        status, _ = await client.request("GET", "/healthz")
        assert status == 503
        stats_client = CircuitClient(host, port, retry=None)
        try:
            with pytest.raises(ServerError) as err:
                await stats_client.stats()
            assert err.value.status == 503
        finally:
            await stats_client.close()

    run(
        with_server(
            scenario,
            resilience=ResilienceConfig(max_inflight=0),
        )
    )


# -- graceful shutdown -----------------------------------------------------


def test_close_drains_parked_lane_queries():
    async def scenario():
        # A huge lane delay: queries park until *something* flushes.
        server = CircuitServer(max_delay=60.0)
        host, port = await server.start()
        client = CircuitClient(host, port)
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        key = reg["key"]
        # One client per query: a single client serializes requests,
        # and we want both parked server-side simultaneously.
        clients = [CircuitClient(host, port), CircuitClient(host, port)]
        queries = [
            asyncio.ensure_future(clients[0].boolean(key, EDGES)),
            asyncio.ensure_future(clients[1].boolean(key, EDGES[:2])),
        ]
        await asyncio.sleep(0.05)  # both are parked on the lane timer
        assert not any(q.done() for q in queries)
        await server.close()
        # The drain flushed the lane: both queries complete, correctly.
        assert await asyncio.wait_for(queries[0], 5.0) is True
        assert await asyncio.wait_for(queries[1], 5.0) is False
        assert server.res_stats.drained_futures == 2
        for c in [client, *clients]:
            await c.close()

    run(scenario())


def test_readyz_reports_draining():
    async def scenario(host, port, client):
        assert (await client.readyz())["ready"] is True
        server_stats = await client.stats()
        assert server_stats["draining"] is False

    run(with_server(scenario))

    # Unit-level: once draining, readiness flips while liveness holds.
    async def drained():
        server = CircuitServer()
        await server.start()
        server._draining = True
        status, payload = await server._dispatch("GET", "/readyz", None)
        assert (status, payload["ready"]) == (503, False)
        status, payload = await server._dispatch("GET", "/healthz", None)
        assert (status, payload["status"]) == (200, "ok")
        server._draining = False
        await server.close()

    run(drained())


# -- idempotent mutation replay --------------------------------------------


def test_facts_idempotency_token_deduplicates():
    async def scenario(host, port, client):
        reg = await client.register(TC, EDGES, "T(0,4)", target="T")
        key = reg["key"]
        first = await client.facts(key, insert=["E(3,4)"], idempotency_key="delta-1")
        assert first["inserted"] == 1
        assert "replayed" not in first
        replay = await client.facts(key, insert=["E(3,4)"], idempotency_key="delta-1")
        assert replay["replayed"] is True
        assert replay["inserted"] == 1
        assert replay["database_fingerprint"] == first["database_fingerprint"]
        stats = await client.stats()
        assert stats["resilience"]["idempotent_replays"] == 1
        assert stats["idempotency"]["hits"] == 1
        assert await client.boolean(key, EDGES + ["E(3,4)"]) is True

    run(with_server(scenario))


def test_facts_rejects_bad_idempotency_key():
    async def scenario(host, port, client):
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        status, payload = await client.request(
            "POST", f"/circuits/{reg['key']}/facts", {"insert": ["E(7,8)"], "idempotency_key": 7}
        )
        assert status == 400
        assert "idempotency_key" in payload["error"]

    run(with_server(scenario))


# -- client retries --------------------------------------------------------


def test_client_retries_idempotent_route_through_injected_reset():
    injector = FaultInjector(seed=11, rates={SOCKET_RESET: 1.0}, max_per_site=1)

    async def scenario(host, port, client):
        # The first response write is aborted; healthz is idempotent,
        # so the client reconnects and retries within its budget.
        assert (await client.healthz())["status"] == "ok"
        assert client.retries == 1
        assert injector.fired[SOCKET_RESET] == 1

    run(with_server(scenario, fault_injector=injector))


def test_client_facts_retry_replays_via_idempotency_token():
    injector = FaultInjector(seed=13, rates={SOCKET_RESET: 0.0}, max_per_site=1)

    async def scenario(host, port, client):
        reg = await client.register(TC, EDGES, "T(0,4)", target="T")
        key = reg["key"]
        # Arm the reset *after* registration so it hits the /facts
        # response specifically: the delta applies server-side, the
        # response is torn, the retry replays via the auto-token.
        injector.rates[SOCKET_RESET] = 1.0
        payload = await client.facts(key, insert=["E(3,4)"])
        assert payload["inserted"] == 1
        assert payload["replayed"] is True
        assert client.retries == 1
        stats = await client.stats()
        assert stats["resilience"]["idempotent_replays"] == 1
        assert await client.boolean(key, EDGES + ["E(3,4)"]) is True

    run(with_server(scenario, fault_injector=injector))


def test_client_without_policy_surfaces_the_failure():
    injector = FaultInjector(seed=17, rates={SOCKET_RESET: 1.0}, max_per_site=1)

    async def scenario(host, port, _client):
        bare = CircuitClient(host, port, retry=None)
        try:
            with pytest.raises(ConnectionError):
                await bare.healthz()
            assert bare.retries == 0
        finally:
            await bare.close()

    run(with_server(scenario, fault_injector=injector))


def test_retry_budget_limits_spend():
    async def scenario():
        client = CircuitClient("127.0.0.1", 1, retry=RetryPolicy(budget=2.0, refill=0.0))
        assert client._spend_retry_token() is True
        assert client._spend_retry_token() is True
        assert client._spend_retry_token() is False  # bucket empty
        assert client.retry_snapshot() == {"retries": 2, "give_ups": 1, "tokens": 0.0}

    run(scenario())


def test_bad_json_body_maps_to_400():
    async def scenario(host, port, client):
        blob = http("POST", "/solve", b"{not json")
        data = await raw_roundtrip(host, port, blob + b"")
        assert b"400 Bad Request" in data
        assert b"not valid JSON" in data

    run(with_server(scenario))
