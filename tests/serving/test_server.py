"""End-to-end suite for the :class:`CircuitServer` HTTP serving layer.

The server's contract (DESIGN.md §10): registration grounds, builds
and compiles once per ``(program fingerprint, db fingerprint,
construction)`` key with LRU eviction; Boolean point queries coalesce
into 64-wide bitset lanes; numeric and incremental routes agree
*exactly* with direct in-process evaluation of the same circuit; and
malformed input maps to 4xx responses, never a dropped connection.

pytest-asyncio is not a dependency, so every test drives its own
event loop through ``asyncio.run``.
"""

import asyncio
import json

from repro.constructions import provenance_circuit
from repro.datalog import Database, Fact, parse_atom, parse_program
from repro.semirings import TROPICAL
from repro.serving import CircuitClient, CircuitServer, ServerError

TC = "T(X,Y) :- E(X,Y).\nT(X,Z) :- T(X,Y), E(Y,Z)."
EDGES = ["E(0,1)", "E(1,2)", "E(2,3)", "E(0,2)"]


def run(coro):
    return asyncio.run(coro)


async def with_server(scenario, **server_kwargs):
    async with CircuitServer(**server_kwargs) as (host, port):
        async with CircuitClient(host, port) as client:
            return await scenario(host, port, client)


# -- lifecycle and registration -------------------------------------------


def test_healthz_and_empty_stats():
    async def scenario(host, port, client):
        health = await client.healthz()
        assert health["status"] == "ok"
        assert health["draining"] is False
        ready = await client.readyz()
        assert ready["ready"] is True
        stats = await client.stats()
        assert stats["circuits"] == 0
        assert stats["cache"] == {"hits": 0, "misses": 0, "evictions": 0}

    run(with_server(scenario))


def test_register_compiles_once_and_hits_cache():
    async def scenario(host, port, client):
        first = await client.register(TC, EDGES, "T(0,3)", target="T")
        assert first["cached"] is False
        assert first["size"] > 0
        again = await client.register(TC, EDGES, "T(0,3)", target="T")
        assert again["cached"] is True
        assert again["key"] == first["key"]
        stats = await client.stats()
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 1

    run(with_server(scenario))


def test_cache_key_separates_databases_and_constructions():
    async def scenario(host, port, client):
        base = await client.register(TC, EDGES, "T(0,3)", target="T")
        other_db = await client.register(TC, EDGES + ["E(3,4)"], "T(0,3)", target="T")
        pinned = await client.register(
            TC, EDGES, "T(0,3)", target="T", construction="generic"
        )
        keys = {base["key"], other_db["key"], pinned["key"]}
        assert len(keys) == 3
        assert pinned["construction"] == "generic"

    run(with_server(scenario))


def test_lru_eviction_forgets_the_oldest_circuit():
    async def scenario(host, port, client):
        first = await client.register(TC, EDGES, "T(0,3)", target="T")
        await client.register(TC, EDGES + ["E(3,4)"], "T(0,4)", target="T")
        stats = await client.stats()
        assert stats["circuits"] == 1
        assert stats["cache"]["evictions"] == 1
        try:
            await client.boolean(first["key"], EDGES)
        except ServerError as exc:
            assert exc.status == 404
        else:
            raise AssertionError("evicted key should 404")

    run(with_server(scenario, max_circuits=1))


# -- Boolean serving -------------------------------------------------------


def test_boolean_answers_match_direct_evaluation():
    async def scenario(host, port, client):
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        key = reg["key"]
        # Direct in-process ground truth on the same inputs.
        program = parse_program(TC, target="T")
        database = Database.from_edges([(0, 1), (1, 2), (2, 3), (0, 2)])
        compiled = provenance_circuit(program, database, Fact("T", (0, 3))).compiled()
        cases = [
            ["E(0,1)", "E(1,2)", "E(2,3)"],
            ["E(0,2)", "E(2,3)"],
            ["E(0,1)", "E(2,3)"],  # gap at 1→2: unreachable
            [],
            EDGES,
        ]
        server_answers = [await client.boolean(key, case) for case in cases]
        direct = compiled.evaluate_boolean_batch(
            [frozenset(parse_atom(c).to_fact() for c in case) for case in cases]
        )
        assert server_answers == direct == [True, True, False, False, True]

    run(with_server(scenario))


def test_concurrent_point_queries_coalesce_into_lanes():
    async def scenario(host, port, client):
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        key = reg["key"]
        workers = [CircuitClient(host, port) for _ in range(32)]
        for worker in workers:
            await worker.connect()
        try:
            answers = await asyncio.gather(
                *[worker.boolean(key, EDGES) for worker in workers]
            )
        finally:
            for worker in workers:
                await worker.close()
        assert answers == [True] * 32
        lanes = (await client.stats())["boolean_lanes"]
        # 32 queries must not have cost 32 single-item bitset passes.
        assert lanes["items"] == 32
        assert lanes["batches"] < 32
        assert lanes["fill_ratio"] > 1 / 64

    run(with_server(scenario))


def test_prebuilt_batches_bypass_the_coalescer():
    async def scenario(host, port, client):
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        values = await client.boolean_batch(
            reg["key"], [["E(0,1)", "E(1,2)", "E(2,3)"], ["E(0,1)"]]
        )
        assert values == [True, False]
        lanes = (await client.stats())["boolean_lanes"]
        assert lanes["items"] == 0  # the coalescing queue never saw them

    run(with_server(scenario))


# -- numeric serving -------------------------------------------------------


def test_numeric_evaluate_matches_direct_circuit_evaluation():
    async def scenario(host, port, client):
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        weights = {"E(0,1)": 1.0, "E(1,2)": 1.0, "E(2,3)": 1.0, "E(0,2)": 5.0}
        served = await client.evaluate(reg["key"], "tropical", weights)
        program = parse_program(TC, target="T")
        database = Database.from_edges([(0, 1), (1, 2), (2, 3), (0, 2)])
        choice = provenance_circuit(program, database, Fact("T", (0, 3)))
        direct = choice.evaluate(
            TROPICAL, {Fact("E", (u, v)): w for (u, v), w in
                       [((0, 1), 1.0), ((1, 2), 1.0), ((2, 3), 1.0), ((0, 2), 5.0)]}
        )
        assert served == direct == 3.0

    run(with_server(scenario))


def test_numeric_batch_and_partial_weights_default_to_stored_valuation():
    async def scenario(host, port, client):
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        values = await client.evaluate_batch(
            reg["key"],
            "counting",
            [{}, {"E(0,2)": 0}],  # all-ones, then cut the shortcut edge
        )
        # Proof trees of T(0,3): 0→1→2→3 and 0→2→3.
        assert values == [2, 1]

    run(with_server(scenario))


def test_update_sessions_persist_and_report_cone_sizes():
    async def scenario(host, port, client):
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        key = reg["key"]
        first = await client.update(key, "counting", {"E(0,2)": 0})
        assert first["outputs"] == [1]
        assert 0 < first["cone_size"] <= reg["size"]
        # Same session, incremental from the previous state.
        second = await client.update(key, "counting", {"E(0,2)": 1})
        assert second["outputs"] == [2]
        third = await client.update(key, "counting", {"E(0,1)": 0, "E(0,2)": 0})
        assert third["outputs"] == [0]

    run(with_server(scenario))


# -- one-shot solve --------------------------------------------------------


def test_solve_route_matches_fixpoint_semantics():
    async def scenario(host, port, client):
        result = await client.solve(TC, ["E(0,1)", "E(1,2)"], "counting", target="T")
        assert result["values"] == {"T(0,1)": 1, "T(1,2)": 1, "T(0,2)": 1}
        assert result["iterations"] >= 2

    run(with_server(scenario))


def test_solve_reports_divergence_as_422():
    async def scenario(host, port, client):
        status, payload = await client.request(
            "POST",
            "/solve",
            {
                "program": TC,
                "target": "T",
                "facts": ["E(0,1)", "E(1,0)"],
                "semiring": "counting",
                "max_iterations": 5,
            },
        )
        assert status == 422
        assert "diverged" in payload["error"]

    run(with_server(scenario))


# -- error handling --------------------------------------------------------


def test_unknown_routes_keys_and_semirings():
    async def scenario(host, port, client):
        assert (await client.request("GET", "/bogus"))[0] == 404
        status, payload = await client.request(
            "POST", "/circuits/feedfacefeedface/boolean", {"true_facts": []}
        )
        assert status == 404 and "unknown circuit key" in payload["error"]
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        status, payload = await client.request(
            "POST", f"/circuits/{reg['key']}/evaluate", {"semiring": "quantum"}
        )
        assert status == 400 and "unknown semiring" in payload["error"]

    run(with_server(scenario))


def test_malformed_requests_return_400_not_a_dropped_connection():
    async def scenario(host, port, client):
        # Registration without an output fact.
        status, payload = await client.request("POST", "/circuits", {"program": TC, "target": "T"})
        assert status == 400 and "output" in payload["error"]
        # Unparseable fact spelling.
        status, payload = await client.request(
            "POST",
            "/circuits",
            {"program": TC, "target": "T", "facts": ["E(0,1)"], "output": "not a fact ("},
        )
        assert status == 400
        # Raw invalid JSON body straight down the socket.
        reader, writer = await asyncio.open_connection(host, port)
        body = b"{not json"
        writer.write(
            b"POST /solve HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s" % (len(body), body)
        )
        await writer.drain()
        status_line = await reader.readline()
        assert b"400" in status_line
        writer.close()
        # The keep-alive client connection is still healthy afterwards.
        assert (await client.healthz())["status"] == "ok"

    run(with_server(scenario))


def test_update_with_unknown_fact_is_a_client_error():
    async def scenario(host, port, client):
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        status, payload = await client.request(
            "POST",
            f"/circuits/{reg['key']}/update",
            {"semiring": "counting", "delta": {"E(9,9)": 0}},
        )
        assert status == 400 and "no input gate" in payload["error"]

    run(with_server(scenario))


def test_wire_accepts_list_form_facts():
    async def scenario(host, port, client):
        reg = await client.register(
            TC, [["E", [0, 1]], ["E", [1, 2]]], ["T", [0, 2]], target="T"
        )
        assert await client.boolean(reg["key"], [["E", [0, 1]], ["E", [1, 2]]]) is True
        assert await client.boolean(reg["key"], [["E", [0, 1]]]) is False

    run(with_server(scenario))


def test_stats_payload_is_json_round_trippable():
    async def scenario(host, port, client):
        reg = await client.register(TC, EDGES, "T(0,3)", target="T")
        await client.boolean(reg["key"], EDGES)
        await client.evaluate(reg["key"], "tropical", {})
        stats = await client.stats()
        assert json.loads(json.dumps(stats)) == stats
        entry = stats["per_circuit"][reg["key"]]
        assert entry["queries"] >= 2
        assert entry["boolean_lanes"]["items"] == 1
        assert "tropical" in entry["numeric_lanes"]

    run(with_server(scenario))


# -- static analysis: /lint and structured validation errors ---------------


def test_lint_route_clean_program():
    async def scenario(host, port, client):
        report = await client.lint(TC, EDGES, target="T")
        assert report["ok"] is True
        assert report["dependencies"]["recursion"] == "linear"
        codes = {d["code"] for d in report["diagnostics"]}
        assert "DL005" in codes  # the SCC report rides along as info

    run(with_server(scenario))


def test_lint_route_reports_dl_codes_not_http_errors():
    async def scenario(host, port, client):
        # Unsafe rule + arity clash: still HTTP 200, diagnostics in body.
        report = await client.lint(
            ["T(X, Y) :- E(X, X).", "U(X) :- T(X)."], target="T"
        )
        assert report["ok"] is False
        codes = {d["code"] for d in report["diagnostics"]}
        assert {"DL001", "DL002"} <= codes
        # Errors come first in the ordered diagnostics list.
        severities = [d["severity"] for d in report["diagnostics"]]
        assert severities.index("error") == 0

    run(with_server(scenario))


def test_lint_route_predicts_divergence_with_semiring_and_facts():
    async def scenario(host, port, client):
        report = await client.lint(
            TC, ["E(0,1)", "E(1,0)"], target="T", semiring="counting"
        )
        assert report["ok"] is False  # DL006 error: predicted divergence
        assert report["divergence"]["verdict"] == "diverges"
        assert "witness" in report["divergence"]
        # Same data over an absorptive semiring is clean.
        clean = await client.lint(
            TC, ["E(0,1)", "E(1,0)"], target="T", semiring="boolean"
        )
        assert clean["ok"] is True
        assert clean["divergence"]["verdict"] == "converges"

    run(with_server(scenario))


def test_lint_route_answers_parse_errors_inline():
    async def scenario(host, port, client):
        report = await client.lint("T(X, Y) :- E(X, Y", target="T")
        assert report["ok"] is False
        error = report["parse_error"]
        assert error["line"] == 1 and error["column"] >= 1
        assert error["source_line"] == "T(X, Y) :- E(X, Y"
        status, _ = await client.request("POST", "/lint", {})
        assert status == 400  # missing 'program' is still a client error

    run(with_server(scenario))


def test_register_rejects_invalid_program_with_structured_400():
    async def scenario(host, port, client):
        status, payload = await client.request(
            "POST",
            "/circuits",
            {
                "program": "T(X, Y) :- E(X, X).",
                "facts": ["E(0,0)"],
                "outputs": ["T(0,0)"],
                "target": "T",
            },
        )
        assert status == 400
        assert "DL001" in payload["error"]
        assert payload["diagnostics"][0]["code"] == "DL001"
        assert payload["diagnostics"][0]["severity"] == "error"

    run(with_server(scenario))


def test_register_reports_parse_position_on_400():
    async def scenario(host, port, client):
        status, payload = await client.request(
            "POST",
            "/circuits",
            {
                "program": "T(X, Y) :- E(X, Y).\nT(X, Y) :- T(X, Z) E(Z, Y).",
                "facts": ["E(0,1)"],
                "outputs": ["T(0,1)"],
                "target": "T",
            },
        )
        assert status == 400
        assert payload["line"] == 2
        assert payload["source_line"].startswith("T(X, Y) :- T(X, Z)")

    run(with_server(scenario))
