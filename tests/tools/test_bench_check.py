"""The perf-regression gate over benchmark trajectories.

``tools/bench_check.py`` is what turns the append-only
``BENCH_*.json`` files into a CI gate, so its comparison rules are
pinned here: score extraction by convention, newest-vs-best-prior
comparison per bench key, the 25% default threshold, and the clean
skips (single record, unscored telemetry, missing files).
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.bench_check import check_trajectory, main, score_of  # noqa: E402


def write_trajectory(path, records):
    path.write_text(json.dumps(records, indent=2))
    return path


def record(bench, **payload):
    return {"bench": bench, "timestamp": "2026-01-01T00:00:00Z", **payload}


# -- score extraction -----------------------------------------------------


def test_score_prefers_deterministic_probe_ratio():
    # Probe ratios come from seeded workloads and are machine-
    # independent, so they gate ahead of wall-clock speedups.
    assert score_of(record("b", speedup=3.5, probe_ratio=9.0)) == 9.0


def test_score_falls_back_to_speedup_then_workloads():
    assert score_of(record("b", speedup=4.0)) == 4.0
    assert score_of(
        record("b", workloads={"x": {"speedup": 2.0}, "y": {"speedup": 4.0}})
    ) == 3.0


def test_score_ignores_booleans_and_telemetry():
    assert score_of(record("b", speedup=True)) is None
    assert score_of(record("b", mean_cone=164.9, size=2538)) is None


def test_score_accepts_serving_throughput():
    # The serving bench has no speedup (there is no baseline to beat);
    # its requests/sec headline is the gated score.
    assert score_of(record("serving", requests_per_sec=1234.5, lane_fill=0.8)) == 1234.5
    assert score_of(record("serving", speedup=2.0, requests_per_sec=9.0)) == 2.0


# -- gating ---------------------------------------------------------------


def test_single_entry_skips_cleanly(tmp_path):
    path = write_trajectory(tmp_path / "BENCH_t.json", [record("a", speedup=3.0)])
    failures, notes = check_trajectory(path, 0.25)
    assert failures == []
    assert any("SKIP" in note and "only 1 scored" in note for note in notes)


def test_within_threshold_passes(tmp_path):
    path = write_trajectory(
        tmp_path / "BENCH_t.json",
        [record("a", speedup=4.0), record("a", speedup=3.1)],  # -22.5%
    )
    failures, _ = check_trajectory(path, 0.25)
    assert failures == []


def test_regression_beyond_threshold_fails(tmp_path):
    path = write_trajectory(
        tmp_path / "BENCH_t.json",
        [record("a", speedup=4.0), record("a", speedup=2.9)],  # -27.5%
    )
    failures, _ = check_trajectory(path, 0.25)
    assert len(failures) == 1
    assert "FAIL" in failures[0] and "a" in failures[0]


def test_newest_compared_against_best_prior_not_latest(tmp_path):
    # A slow middle run must not lower the bar: 4.0 -> 2.0 -> 3.5 still
    # regresses only 12.5% against the best prior (4.0).
    path = write_trajectory(
        tmp_path / "BENCH_t.json",
        [record("a", speedup=4.0), record("a", speedup=2.0), record("a", speedup=3.5)],
    )
    failures, _ = check_trajectory(path, 0.25)
    assert failures == []
    # ... and 2.5 is a 37.5% drop from 4.0, so it fails even though it
    # beats the middle run.
    path = write_trajectory(
        tmp_path / "BENCH_t.json",
        [record("a", speedup=4.0), record("a", speedup=2.0), record("a", speedup=2.5)],
    )
    failures, _ = check_trajectory(path, 0.25)
    assert len(failures) == 1


def test_bench_keys_gate_independently(tmp_path):
    path = write_trajectory(
        tmp_path / "BENCH_t.json",
        [
            record("fast", speedup=10.0),
            record("slow", speedup=4.0),
            record("fast", speedup=9.9),
            record("slow", speedup=1.0),
        ],
    )
    failures, _ = check_trajectory(path, 0.25)
    assert len(failures) == 1
    assert "slow" in failures[0]


def test_smoke_and_full_records_gate_separately(tmp_path):
    # Smoke sweeps run different representative scales, so a lower
    # smoke score must not be compared against a full-mode baseline
    # (and vice versa): only the smoke-vs-smoke regression fails here.
    path = write_trajectory(
        tmp_path / "BENCH_t.json",
        [
            record("a", speedup=5.0),
            record("a", speedup=4.0, smoke=True),
            record("a", speedup=2.0, smoke=True),
        ],
    )
    failures, _ = check_trajectory(path, 0.25)
    assert len(failures) == 1
    assert "[smoke]" in failures[0]


def test_backend_tagged_records_gate_separately(tmp_path):
    # The vectorized bench emits python- and vectorized-tagged records
    # for the same bench key; each backend has its own baseline, so
    # only the regression within a backend group fails.
    path = write_trajectory(
        tmp_path / "BENCH_t.json",
        [
            record("v/bf", speedup=5.0, backend="vectorized"),
            record("v/bf", speedup=1.0, backend="python"),
            record("v/bf", speedup=1.1, backend="python"),
            record("v/bf", speedup=2.0, backend="vectorized"),
        ],
    )
    failures, notes = check_trajectory(path, 0.25)
    assert len(failures) == 1
    assert "[vectorized]" in failures[0]
    assert any("[python]" in note and "OK" in note for note in notes)


def test_backend_tag_composes_with_smoke_suffix(tmp_path):
    path = write_trajectory(
        tmp_path / "BENCH_t.json",
        [
            record("v/bf", speedup=5.0, backend="vectorized", smoke=True),
            record("v/bf", speedup=2.0, backend="vectorized"),
            record("v/bf", speedup=4.9, backend="vectorized", smoke=True),
            record("v/bf", speedup=1.9, backend="vectorized"),
        ],
    )
    failures, notes = check_trajectory(path, 0.25)
    assert not failures
    assert any("[vectorized] [smoke]" in note for note in notes)


def test_unscored_records_do_not_gate(tmp_path):
    path = write_trajectory(
        tmp_path / "BENCH_t.json",
        [record("telemetry", mean_cone=10.0), record("telemetry", mean_cone=99.0)],
    )
    failures, notes = check_trajectory(path, 0.25)
    assert failures == []
    assert any("unscored" in note for note in notes)


def test_bench_that_stops_emitting_its_score_fails(tmp_path):
    # A previously scored key whose newest record lost its metric is a
    # broken gate, not a pass.
    path = write_trajectory(
        tmp_path / "BENCH_t.json",
        [record("a", speedup=4.0), record("a", rows=[])],
    )
    failures, _ = check_trajectory(path, 0.25)
    assert len(failures) == 1
    assert "stopped emitting" in failures[0]


def test_lane_fill_gates_alongside_throughput(tmp_path):
    # Throughput held steady but the batcher degenerated to point
    # evaluation: that is a serving regression even though the primary
    # score passed.
    path = write_trajectory(
        tmp_path / "BENCH_serving.json",
        [
            record("serving", requests_per_sec=1000.0, lane_fill=0.8),
            record("serving", requests_per_sec=1000.0, lane_fill=0.1),
        ],
    )
    failures, _ = check_trajectory(path, 0.25)
    assert len(failures) == 1
    assert "lane_fill" in failures[0]


def test_lane_fill_within_threshold_passes(tmp_path):
    path = write_trajectory(
        tmp_path / "BENCH_serving.json",
        [
            record("serving", requests_per_sec=1000.0, lane_fill=0.80),
            record("serving", requests_per_sec=990.0, lane_fill=0.75),
        ],
    )
    failures, notes = check_trajectory(path, 0.25)
    assert failures == []
    assert any("lane_fill" in note for note in notes)


# -- CLI ------------------------------------------------------------------


def test_main_exit_codes(tmp_path):
    good = write_trajectory(
        tmp_path / "BENCH_good.json",
        [record("a", speedup=3.0), record("a", speedup=3.2)],
    )
    bad = write_trajectory(
        tmp_path / "BENCH_bad.json",
        [record("a", speedup=4.0), record("a", speedup=1.0)],
    )
    assert main([str(good)]) == 0
    assert main([str(good), str(bad)]) == 1
    assert main([str(good), str(bad), "--threshold", "0.8"]) == 0
    assert main([str(tmp_path / "BENCH_missing.json")]) == 0  # skip, not crash


def test_incremental_record_scores_on_speedup(tmp_path):
    # The shape bench_incremental.py appends: speedup is the gate
    # score, the per-event timings ride along as telemetry.
    shaped = record(
        "incremental/streaming_tc",
        smoke=False,
        speedup=7.5,
        maintained_ms=820.0,
        recompute_ms=6150.0,
        events=200,
    )
    assert score_of(shaped) == 7.5
    path = write_trajectory(
        tmp_path / "BENCH_incremental.json",
        [shaped, record("incremental/streaming_tc", speedup=2.0, events=200)],
    )
    failures, _ = check_trajectory(path, threshold=0.25)
    assert failures and "incremental/streaming_tc" in failures[0]
