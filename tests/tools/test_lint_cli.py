"""``python -m repro.lint``: the analyzer CLI.

Drives :func:`repro.lint.main` in-process (no subprocesses), pinning
exit codes, the human and ``--json`` output shapes, ``--strict``
warning promotion, and the ``--self-check`` gate CI runs over the
shipped library and example programs.
"""

import json

import pytest

from repro.lint import LINT_SEMIRINGS, lint_text, main, self_check_programs

CLEAN = "T(X, Y) :- E(X, Y).\nT(X, Y) :- T(X, Z), E(Z, Y).\n"
UNSAFE = "T(X, Y) :- E(X, X).\nU(X) :- T(X).\n"
DEAD = "T(X, Y) :- E(X, Y).\nS(X, Y) :- E(Y, X).\n"
BROKEN = "T(X, Y) :- T(X, Z) E(Z, Y).\n"


def _program_file(tmp_path, text, name="prog.dl"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def test_clean_program_exits_zero(tmp_path, capsys):
    assert main([_program_file(tmp_path, CLEAN)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_errors_exit_one_with_dl_codes(tmp_path, capsys):
    assert main([_program_file(tmp_path, UNSAFE), "--target", "T"]) == 1
    out = capsys.readouterr().out
    assert "DL001 error" in out and "DL002 error" in out
    # Diagnostics carry file:line positions from the parser spans.
    assert "prog.dl:1:" in out


def test_warnings_fail_only_under_strict(tmp_path, capsys):
    path = _program_file(tmp_path, DEAD)
    assert main([path, "--target", "T"]) == 0
    assert "DL007" in capsys.readouterr().out
    assert main([path, "--target", "T", "--strict"]) == 1


def test_parse_error_prints_caret_and_exits_one(tmp_path, capsys):
    assert main([_program_file(tmp_path, BROKEN)]) == 1
    out = capsys.readouterr().out
    assert "parse error" in out
    caret_line = out.splitlines()[-1]
    assert caret_line.strip() == "^"


def test_missing_file_exits_one(tmp_path, capsys):
    assert main([str(tmp_path / "nope.dl")]) == 1
    assert "no such file" in capsys.readouterr().err


def test_json_output_matches_the_lint_wire_shape(tmp_path, capsys):
    assert main([_program_file(tmp_path, CLEAN), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["target"] == "T"
    assert payload["dependencies"]["recursion"] == "linear"


def test_semiring_flag_arms_divergence_prediction(tmp_path, capsys):
    assert main([_program_file(tmp_path, CLEAN), "--semiring", "counting", "-v"]) == 0
    out = capsys.readouterr().out
    assert "DL006 warning" in out  # cyclic over counting: may diverge
    assert main([_program_file(tmp_path, CLEAN), "--semiring", "boolean", "--strict"]) == 0


def test_lint_text_parse_error_payload():
    report, payload = lint_text(BROKEN, "broken.dl")
    assert report is None
    assert payload["ok"] is False
    assert payload["parse_error"]["line"] == 1


def test_self_check_covers_library_and_examples_and_passes(capsys):
    items = self_check_programs()
    names = [name for name, _, _ in items]
    assert any(name.startswith("library:") for name in names)
    assert any(name.endswith(".dl") for name in names)
    assert main(["--self-check"]) == 0
    assert "clean" in capsys.readouterr().out


def test_semiring_vocabulary_matches_the_registry():
    assert set(LINT_SEMIRINGS) == {
        "boolean",
        "counting",
        "counting_cap",
        "tropical",
        "tropical_int",
        "viterbi",
        "fuzzy",
        "lukasiewicz",
        "arctic",
    }


def test_no_arguments_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2
    assert "give program files" in capsys.readouterr().err
