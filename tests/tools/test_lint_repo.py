"""``tools/lint_repo.py``: the stdlib-ast repo-invariant linter.

The CI lint job runs ``python tools/lint_repo.py`` as a blocking
backstop, so the repo itself must stay clean, and each check must
actually catch its seeded violation.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

import lint_repo  # noqa: E402


def _write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def _codes(findings):
    return [finding.code for finding in findings]


def test_repo_is_clean():
    assert lint_repo.main([]) == 0


def test_mutable_default_detected(tmp_path):
    path = _write(tmp_path, "bad.py", "def f(x=[]):\n    return x\n")
    findings = lint_repo.lint_file(path, root=tmp_path)
    assert _codes(findings) == ["mutable-default"]
    assert "f" in findings[0].message


def test_mutable_default_in_kwonly_and_lambda(tmp_path):
    source = "g = lambda *, acc={}: acc\n\ndef h(*, seen={1, 2}):\n    return seen\n"
    path = _write(tmp_path, "bad.py", source)
    assert _codes(lint_repo.lint_file(path, root=tmp_path)) == [
        "mutable-default",
        "mutable-default",
    ]


def test_none_default_is_fine(tmp_path):
    path = _write(tmp_path, "ok.py", "def f(x=None, y=(), z=0):\n    return x, y, z\n")
    assert lint_repo.lint_file(path, root=tmp_path) == []


def test_bare_except_detected(tmp_path):
    source = "try:\n    pass\nexcept:\n    pass\n"
    path = _write(tmp_path, "bad.py", source)
    findings = lint_repo.lint_file(path, root=tmp_path)
    assert _codes(findings) == ["bare-except"]
    assert findings[0].line == 3


def test_except_exception_allowed(tmp_path):
    source = "try:\n    pass\nexcept Exception:\n    pass\n"
    path = _write(tmp_path, "ok.py", source)
    assert lint_repo.lint_file(path, root=tmp_path) == []


def test_exec_outside_allowlist_detected(tmp_path):
    path = _write(tmp_path, "src/other.py", "exec('print(1)')\n")
    findings = lint_repo.lint_file(path, root=tmp_path)
    assert _codes(findings) == ["exec-kernel"]
    assert "vetted closure compilers" in findings[0].message


def test_eval_outside_allowlist_detected(tmp_path):
    path = _write(tmp_path, "helper.py", "x = eval('1 + 1')\n")
    assert _codes(lint_repo.lint_file(path, root=tmp_path)) == ["exec-kernel"]


def test_exec_in_allowlisted_path_requires_variable_source(tmp_path):
    # Simulate an allowlisted file under a fake repo root: a literal
    # first argument is still a finding; a variable is the vetted shape.
    relative = sorted(lint_repo.EXEC_ALLOWLIST)[0]
    bad = _write(tmp_path, relative, "exec('literal', {})\n")
    assert _codes(lint_repo.lint_file(bad, root=tmp_path)) == ["exec-kernel"]
    good = _write(tmp_path, relative, "source = make()\nexec(source, {})\n")
    assert lint_repo.lint_file(good, root=tmp_path) == []


def test_real_allowlisted_compilers_pass_as_is():
    for relative in sorted(lint_repo.EXEC_ALLOWLIST):
        path = lint_repo.REPO_ROOT / relative
        assert path.is_file(), relative
        assert lint_repo.lint_file(path) == []


def test_line_length_detected(tmp_path):
    long_line = "x = " + " + ".join(["1"] * 50)
    assert len(long_line) > lint_repo.MAX_LINE_LENGTH
    path = _write(tmp_path, "long.py", long_line + "\n")
    findings = lint_repo.lint_file(path, root=tmp_path)
    assert _codes(findings) == ["line-length"]


def test_syntax_error_is_a_finding_not_a_crash(tmp_path):
    path = _write(tmp_path, "broken.py", "def f(:\n")
    findings = lint_repo.lint_file(path, root=tmp_path)
    assert _codes(findings) == ["syntax-error"]


def test_main_exit_codes_and_output(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py", "def f(x=[]):\n    return x\n")
    assert lint_repo.main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "mutable-default" in out and "1 finding(s)" in out
    ok = _write(tmp_path, "ok.py", "def f(x=None):\n    return x\n")
    assert lint_repo.main([str(ok)]) == 0
    assert "clean" in capsys.readouterr().out


def test_iter_python_files_covers_the_scan_dirs():
    files = {p.as_posix() for p in lint_repo.iter_python_files()}
    assert any("src/repro/datalog/analysis.py" in f for f in files)
    assert any("tools/lint_repo.py" in f for f in files)
    assert not any("__pycache__" in f for f in files)


@pytest.mark.parametrize("relative", sorted(lint_repo.EXEC_ALLOWLIST))
def test_allowlist_entries_exist(relative):
    assert (lint_repo.REPO_ROOT / relative).is_file()
