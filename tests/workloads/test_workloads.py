"""Workload generator invariants."""

import pytest

from repro.datalog import Fact
from repro.workloads import (
    complete_dag,
    cycle_graph,
    dyck_concatenated_path,
    dyck_nested_path,
    grid_digraph,
    layered_graph,
    path_graph,
    random_bracket_graph,
    random_digraph,
    random_labeled_digraph,
    random_weights,
    word_path,
)


def test_path_graph():
    db = path_graph(5)
    assert len(db) == 5
    assert Fact("E", (0, 1)) in db and Fact("E", (4, 5)) in db


def test_cycle_graph():
    db = cycle_graph(4)
    assert len(db) == 4
    assert Fact("E", (3, 0)) in db
    with pytest.raises(ValueError):
        cycle_graph(0)


def test_layered_graph_structure():
    graph = layered_graph(3, 4, seed=2)
    assert graph.num_layers == 4
    assert graph.path_length == 5
    assert graph.num_vertices == 2 + 12
    position = {}
    for depth, layer in enumerate(graph.layers):
        for v in layer:
            position[v] = depth
    position[graph.source] = -1
    position[graph.sink] = 4
    for u, v in graph.edges:
        assert position[v] - position[u] == 1, (u, v)


def test_layered_graph_every_vertex_has_an_out_edge():
    graph = layered_graph(3, 5, seed=9, edge_probability=0.05)
    sources = {u for u, _v in graph.edges}
    for layer in graph.layers[:-1]:
        for v in layer:
            assert v in sources


def test_layered_graph_is_deterministic_per_seed():
    a = layered_graph(3, 3, seed=5)
    b = layered_graph(3, 3, seed=5)
    assert a.edges == b.edges


def test_random_digraph_backbone_and_size():
    db = random_digraph(8, 20, seed=0)
    for i in range(7):
        assert Fact("E", (i, i + 1)) in db
    assert len(db) <= 20 + 7
    assert len(db) >= 7


def test_random_digraph_no_self_loops():
    db = random_digraph(6, 25, seed=3)
    for args in db.tuples("E"):
        assert args[0] != args[1]


def test_random_digraph_requires_two_vertices():
    with pytest.raises(ValueError):
        random_digraph(1, 1)


def test_grid_digraph():
    db = grid_digraph(3, 3)
    assert len(db) == 12  # 2·3 right + 2·3 down... 6 + 6
    assert Fact("E", ((0, 0), (0, 1))) in db


def test_complete_dag():
    db = complete_dag(5)
    assert len(db) == 10


def test_random_weights_deterministic_and_bounded():
    db = random_digraph(5, 10, seed=1)
    w1 = random_weights(db, seed=4)
    w2 = random_weights(db, seed=4)
    assert w1 == w2
    assert all(1.0 <= v <= 9.0 for v in w1.values())


def test_word_path():
    edges = word_path("abc")
    assert edges == [(0, "a", 1), (1, "b", 2), (2, "c", 3)]


def test_dyck_paths():
    nested = dyck_nested_path(2)
    assert [label for _u, label, _v in nested] == ["L", "L", "R", "R"]
    concat = dyck_concatenated_path(2)
    assert [label for _u, label, _v in concat] == ["L", "R", "L", "R"]


def test_random_labeled_digraph_backbone():
    edges = random_labeled_digraph(6, 12, "ab", seed=0, backbone_word="ab")
    assert (0, "a", 1) in edges and (1, "b", 2) in edges
    assert all(u != v for u, _l, v in edges)


def test_random_bracket_graph_contains_balanced_backbone():
    edges = random_bracket_graph(8, 14, seed=2, nesting=2)
    labels = [label for _u, label, _v in edges[:4]]
    assert labels == ["L", "L", "R", "R"]
