#!/usr/bin/env python3
"""Gate the benchmark trajectories against performance regressions.

The benchmarks append one record per run to the ``BENCH_*.json``
trajectory files (see ``tools/bench_record.py``), so the files hold
the perf history across PRs.  This tool turns that history into a CI
gate: for every bench key, the **newest** record's score must not
fall more than ``--threshold`` (default 25%) below the **best prior**
record for the same key.

A record's *score* is a single higher-is-better scalar extracted from
its payload, by convention:

* the top-level ``"probe_ratio"`` field when present (deterministic
  work counters beat wall-clock ratios for gating: the seeded
  workloads make them machine-independent), else
* the top-level ``"speedup"`` field (every head-to-head bench records
  one), else
* the top-level ``"requests_per_sec"`` field (the serving bench's
  throughput headline), else
* the mean of the per-workload ``"speedup"`` values under a
  ``"workloads"`` mapping.

Independently of the primary score, a record carrying a top-level
``"lane_fill"`` field (the serving bench's batching-efficiency ratio)
gates that metric the same way: the newest value must not fall more
than the threshold below the best prior for the same bench key.  A
throughput win bought by abandoning lane coalescing is still a
serving regression.

Records with none of these (pure telemetry, e.g. incremental-cone
statistics) are unscored: a key whose records are *all* unscored
never gates, but a key whose **newest** record is unscored while
earlier ones carried scores fails -- the bench stopped emitting its
gating metric, which is a broken gate, not a pass.  A bench key with
fewer than two scored records skips cleanly -- a brand-new bench
cannot regress against itself.  Smoke-mode records (``"smoke": true``,
shrunk sweeps) gate separately from full-mode records of the same
bench key: the two run different representative scales, so comparing
across modes would measure the sweep, not the code.  Likewise a
record tagged with a top-level ``"backend"`` field (the vectorized
NumPy bench emits ``"python"``- and ``"vectorized"``-tagged records)
gates per backend: the two kernels have different baselines, so
pooling them would let a slow backend hide behind a fast one.

Usage::

    python tools/bench_check.py                 # all BENCH_*.json in repo root
    python tools/bench_check.py BENCH_x.json    # explicit files
    python tools/bench_check.py --threshold 0.4 # looser gate

Exit code 1 iff any bench key regressed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO = Path(__file__).resolve().parent.parent

if str(REPO) not in sys.path:
    sys.path.insert(0, str(REPO))

from tools.bench_record import load_records  # noqa: E402

DEFAULT_THRESHOLD = 0.25


def score_of(record: dict) -> Optional[float]:
    """Higher-is-better scalar for *record*, or None if unscored."""
    for key in ("probe_ratio", "speedup", "requests_per_sec"):
        value = record.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    workloads = record.get("workloads")
    if isinstance(workloads, dict):
        speedups = [
            w["speedup"]
            for w in workloads.values()
            if isinstance(w, dict) and isinstance(w.get("speedup"), (int, float))
        ]
        if speedups:
            return sum(speedups) / len(speedups)
    return None


#: Secondary higher-is-better metrics gated alongside the primary score.
AUX_METRICS = ("lane_fill",)


def aux_scores(record: dict) -> Dict[str, float]:
    """The record's auxiliary gated metrics (may be empty)."""
    out: Dict[str, float] = {}
    for key in AUX_METRICS:
        value = record.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[key] = float(value)
    return out


def check_trajectory(
    path: Path, threshold: float
) -> Tuple[List[str], List[str]]:
    """``(failures, notes)`` for one trajectory file.

    Records are grouped by their ``"bench"`` key and smoke/full mode
    in file order (the files are append-only, so order is chronology).
    """
    failures: List[str] = []
    notes: List[str] = []
    by_key: Dict[str, List[dict]] = {}
    for record in load_records(path):
        key = record.get("bench", "?")
        backend = record.get("backend")
        if isinstance(backend, str) and backend:
            key += f" [{backend}]"
        if record.get("smoke"):
            key += " [smoke]"
        by_key.setdefault(key, []).append(record)

    for key, records in sorted(by_key.items()):
        scored = [(r, score_of(r)) for r in records]
        unscored = sum(1 for _, s in scored if s is None)
        scores = [s for _, s in scored if s is not None]
        if unscored == len(records):
            notes.append(f"SKIP {path.name}:{key}: {len(records)} unscored record(s)")
            continue
        if scored[-1][1] is None:
            # A bench that used to emit a score and stopped is a broken
            # gate, not a pass: fail loudly instead of silently
            # comparing stale prior records against each other.
            failures.append(
                f"FAIL {path.name}:{key}: newest record is unscored but "
                f"{len(scores)} earlier record(s) carry scores -- the bench "
                "stopped emitting its gating metric"
            )
            continue
        if len(scores) < 2:
            notes.append(
                f"SKIP {path.name}:{key}: only {len(scores)} scored record(s), "
                "nothing to compare against"
            )
            continue
        newest = scores[-1]
        best_prior = max(scores[:-1])
        floor = best_prior * (1.0 - threshold)
        verdict = "FAIL" if newest < floor else "OK"
        line = (
            f"{verdict} {path.name}:{key}: newest {newest:.3f} vs best prior "
            f"{best_prior:.3f} (floor {floor:.3f}, threshold {threshold:.0%})"
        )
        if newest < floor:
            failures.append(line)
        else:
            notes.append(line)

        # Auxiliary metrics (e.g. lane_fill) gate independently of the
        # primary score for the same key.
        for metric in AUX_METRICS:
            history = [aux_scores(r).get(metric) for r in records]
            values = [v for v in history if v is not None]
            if len(values) < 2 or history[-1] is None:
                continue
            newest_aux = values[-1]
            best_aux = max(values[:-1])
            aux_floor = best_aux * (1.0 - threshold)
            aux_line = (
                f"{'FAIL' if newest_aux < aux_floor else 'OK'} {path.name}:{key} "
                f"[{metric}]: newest {newest_aux:.3f} vs best prior {best_aux:.3f} "
                f"(floor {aux_floor:.3f})"
            )
            if newest_aux < aux_floor:
                failures.append(aux_line)
            else:
                notes.append(aux_line)
    return failures, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trajectories",
        nargs="*",
        type=Path,
        help="trajectory files (default: BENCH_*.json in the repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional drop below the best prior score (default 0.25)",
    )
    args = parser.parse_args(argv)

    paths = args.trajectories or sorted(REPO.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json trajectories found; nothing to gate")
        return 0

    failures: List[str] = []
    for path in paths:
        if not path.exists():
            print(f"SKIP {path}: no such file")
            continue
        file_failures, notes = check_trajectory(path, args.threshold)
        for line in notes:
            print(line)
        for line in file_failures:
            print(line)
        failures.extend(file_failures)

    if failures:
        print(f"{len(failures)} benchmark regression(s) beyond the threshold")
        return 1
    print("bench trajectories OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
