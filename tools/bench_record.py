"""Append machine-readable benchmark results to a JSON trajectory file.

``BENCH_eval_runtime.json`` (repo root) is a JSON array of run
records; each record carries the machine fingerprint plus whatever
payload the benchmark hands over (the ``PerfReport.as_records()``
rows and the asserted speedups).  Benchmarks append one record per
run, so the file accumulates the perf trajectory across PRs -- CI
uploads it as an artifact on every run.

Usage from a benchmark::

    from tools.bench_record import append_record
    append_record(path, "eval_runtime/tropical_single", {"rows": ...})

or from the shell::

    python tools/bench_record.py BENCH_eval_runtime.json my_bench '{"x": 1}'
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Mapping


def load_records(path: str | Path) -> list:
    """The current trajectory: a list of run records (empty file ok)."""
    path = Path(path)
    if not path.exists():
        return []
    text = path.read_text().strip()
    if not text:
        return []
    records = json.loads(text)
    if not isinstance(records, list):
        raise ValueError(f"{path} must hold a JSON array of records")
    return records


def append_record(path: str | Path, bench: str, payload: Mapping) -> dict:
    """Append one run record for *bench* to *path* and return it.

    The record is the *payload* plus a reproducibility fingerprint:
    UTC timestamp, Python version and platform string.  Payload keys
    win on collision so a benchmark can override the defaults.
    """
    path = Path(path)
    records = load_records(path)
    record = {
        "bench": bench,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "implementation": platform.python_implementation(),
    }
    record.update(payload)
    records.append(record)
    path.write_text(json.dumps(records, indent=2) + "\n")
    return record


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print("usage: bench_record.py <trajectory.json> <bench-name> <payload-json>", file=sys.stderr)
        return 2
    path, bench, payload = argv
    record = append_record(path, bench, json.loads(payload))
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
