#!/usr/bin/env python3
"""Fail on dangling intra-repo documentation references.

Scans Markdown files and Python module docstrings for references to
repo files and exits non-zero when a referenced file does not exist.
This is the CI guard that keeps DESIGN.md and README.md citations honest
(the repo once shipped five modules citing a DESIGN.md that did not
exist).

Two kinds of references are checked:

* Markdown link targets ``[text](path)`` with a relative path (http,
  mailto and pure-anchor targets are ignored).
* Bare file tokens ending in ``.md``, ``.py``, ``.yml`` or ``.toml``
  (e.g. ``DESIGN.md §6``, ``benchmarks/bench_seminaive.py``).

A token resolves if it exists relative to the referencing file or the
repo root, if it is a path suffix of a tracked file (so
``datalog/grounding.py`` finds ``src/repro/datalog/grounding.py``),
or — for path-less tokens like ``conftest.py`` — if its basename
matches any tracked file.  ``PAPERS.md`` and ``SNIPPETS.md`` are
skipped because they quote external repositories by design, and
``ISSUE.md`` because a task spec may cite files the task is about to
create.

Usage: ``python tools/check_doc_links.py`` (from anywhere inside the
repo).  Prints every dangling reference; exit code 1 if any.
"""

from __future__ import annotations

import ast
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# PAPERS/SNIPPETS quote external repositories; ISSUE.md may cite files
# the described task has yet to create.
SKIP_MARKDOWN = {"PAPERS.md", "SNIPPETS.md", "ISSUE.md"}

# Target = first whitespace-free run after '(' (tolerates link titles
# like [x](DESIGN.md "notes")); anchor-only targets are skipped.
MD_LINK = re.compile(r"\[[^\]]*\]\(\s*<?([^)#\s>][^)\s>]*)")
FILE_TOKEN = re.compile(r"[A-Za-z0-9_][A-Za-z0-9_./-]*\.(?:md|py|yml|toml)\b")


def repo_files() -> list[Path]:
    """Tracked files only (git), so local .venv/build dirs and other
    untracked clutter neither get scanned nor count as link targets;
    falls back to a filtered walk outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "-C", str(REPO), "ls-files", "-z"],
            capture_output=True,
            check=True,
            text=True,
        ).stdout
        return [REPO / name for name in out.split("\0") if name]
    except (OSError, subprocess.CalledProcessError):
        skip = {".git", "__pycache__", ".venv", "venv", "node_modules", "build", "dist"}
        return [
            p
            for p in REPO.rglob("*")
            if p.is_file()
            and not (set(p.parts) & skip)
            and ".egg-info" not in "".join(p.parts)
        ]


def module_docstring(path: Path) -> str:
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError:
        return ""
    return ast.get_docstring(tree) or ""


def resolves(token: str, referencing_file: Path, suffixes: set) -> bool:
    token = token.strip().split("#", 1)[0]  # drop anchors: DESIGN.md#s5
    while token.startswith("./"):
        token = token[2:]
    if not token or token.startswith(("http://", "https://", "mailto:")):
        return True
    if (referencing_file.parent / token).exists() or (REPO / token).exists():
        return True
    # Suffix mention ("datalog/grounding.py", "conftest.py"): any
    # tracked file whose path ends with the token at a '/' boundary
    # counts; leading dots in directory names ('.github') are ignored.
    return token in suffixes


def path_suffixes(files: list) -> set:
    out: set = set()
    for p in files:
        rel = p.relative_to(REPO).as_posix()
        variants = {rel, rel.lstrip(".")}
        for variant in variants:
            parts = variant.split("/")
            for i in range(len(parts)):
                out.add("/".join(parts[i:]))
    return out


def main() -> int:
    files = repo_files()
    suffixes = path_suffixes(files)
    dangling: list = []

    for path in files:
        rel = path.relative_to(REPO)
        if path.suffix == ".md":
            if path.name in SKIP_MARKDOWN:
                continue
            text = path.read_text(encoding="utf-8")
            tokens = MD_LINK.findall(text) + FILE_TOKEN.findall(text)
        elif path.suffix == ".py":
            tokens = FILE_TOKEN.findall(module_docstring(path))
        else:
            continue
        for token in tokens:
            if not resolves(token, path, suffixes):
                dangling.append((rel, token))

    for rel, token in dangling:
        print(f"DANGLING {rel}: {token}")
    if dangling:
        print(f"{len(dangling)} dangling documentation reference(s)")
        return 1
    print(f"doc links OK ({len(files)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
