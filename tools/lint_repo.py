#!/usr/bin/env python3
"""The repo's own lint: stdlib-``ast`` checks for invariants ruff can't see.

ruff (see ``pyproject.toml``) is the style linter, but it is not
installable in every environment this repo must build in, and two of
our invariants are repo-specific anyway.  This tool is the blocking CI
backstop: pure stdlib, no installs, exit 1 on any finding.

Checks
------

* **mutable-default** -- no mutable default arguments (``def f(x=[])``
  and friends): the classic shared-state bug, and every config object
  in this repo is deliberately frozen/immutable.
* **bare-except** -- no ``except:`` without an exception class; the
  serving layer's resilience story depends on ``KeyboardInterrupt`` /
  ``CancelledError`` escaping handlers (``except Exception`` is the
  widest allowed).
* **exec-kernel** -- ``exec``/``eval`` only in the two vetted closure
  compilers (:data:`EXEC_ALLOWLIST`), and only in the
  ``exec(source, namespace)`` shape where ``source`` is a *variable*
  holding template-generated code -- never a literal, f-string, or
  call expression inline in the ``exec`` itself.  Anything else is
  how injection bugs start.
* **line-length** -- over ``120`` columns (the ruff setting), so the
  gate holds even where ruff never runs.

Usage::

    python tools/lint_repo.py            # lint the repo, exit 1 on findings
    python tools/lint_repo.py path.py    # lint specific files (tests use this)
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, NamedTuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories scanned when no explicit files are given.
SCAN_DIRS = ("src", "tests", "tools", "benchmarks", "examples")

MAX_LINE_LENGTH = 120

#: The only files allowed to call ``exec``/``eval``: the two closure
#: compilers whose sources are built exclusively from the vetted
#: semiring expression templates.
EXEC_ALLOWLIST = frozenset(
    {
        "src/repro/circuits/runtime.py",
        "src/repro/datalog/seminaive.py",
    }
)

_MUTABLE_DEFAULT_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


class Finding(NamedTuple):
    path: str
    line: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code}: {self.message}"


def _check_mutable_defaults(tree: ast.AST, path: str) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        args = node.args
        for default in (*args.defaults, *(d for d in args.kw_defaults if d is not None)):
            if isinstance(default, _MUTABLE_DEFAULT_NODES):
                name = getattr(node, "name", "<lambda>")
                yield Finding(
                    path,
                    default.lineno,
                    "mutable-default",
                    f"function {name!r} has a mutable default argument "
                    f"({type(default).__name__.lower()}); default to None and "
                    "build inside the body",
                )


def _check_bare_except(tree: ast.AST, path: str) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield Finding(
                path,
                node.lineno,
                "bare-except",
                "bare 'except:' swallows KeyboardInterrupt/SystemExit/CancelledError; "
                "catch 'Exception' (or narrower)",
            )


def _check_exec(tree: ast.AST, path: str, relative: str) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Name) and func.id in ("exec", "eval")):
            continue
        if relative not in EXEC_ALLOWLIST:
            yield Finding(
                path,
                node.lineno,
                "exec-kernel",
                f"{func.id}() outside the vetted closure compilers "
                f"({', '.join(sorted(EXEC_ALLOWLIST))})",
            )
            continue
        if not node.args or not isinstance(node.args[0], ast.Name):
            yield Finding(
                path,
                node.lineno,
                "exec-kernel",
                f"{func.id}() source must be a variable bound to template-generated "
                "code, not an inline literal/f-string/call",
            )


def _check_line_length(source: str, path: str) -> Iterable[Finding]:
    for lineno, line in enumerate(source.splitlines(), start=1):
        if len(line) > MAX_LINE_LENGTH:
            yield Finding(
                path,
                lineno,
                "line-length",
                f"{len(line)} > {MAX_LINE_LENGTH} columns",
            )


def lint_file(filepath: Path, root: Path = REPO_ROOT) -> List[Finding]:
    """All findings for one Python file (sorted by line)."""
    try:
        relative = filepath.resolve().relative_to(root).as_posix()
    except ValueError:
        relative = filepath.as_posix()
    display = relative
    source = filepath.read_text(encoding="utf-8")
    findings = list(_check_line_length(source, display))
    try:
        tree = ast.parse(source, filename=str(filepath))
    except SyntaxError as exc:
        findings.append(
            Finding(display, exc.lineno or 0, "syntax-error", exc.msg or "cannot parse")
        )
        return sorted(findings, key=lambda f: f.line)
    findings.extend(_check_mutable_defaults(tree, display))
    findings.extend(_check_bare_except(tree, display))
    findings.extend(_check_exec(tree, display, relative))
    return sorted(findings, key=lambda f: f.line)


def iter_python_files(root: Path = REPO_ROOT) -> Iterable[Path]:
    for directory in SCAN_DIRS:
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            yield path


def main(argv: List[str]) -> int:
    if argv:
        files = [Path(a) for a in argv]
    else:
        files = list(iter_python_files())
    all_findings: List[Finding] = []
    for filepath in files:
        all_findings.extend(lint_file(filepath))
    for finding in all_findings:
        print(finding.format())
    checked = len(files)
    if all_findings:
        print(f"lint_repo: {len(all_findings)} finding(s) in {checked} file(s)")
        return 1
    print(f"lint_repo: clean ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
